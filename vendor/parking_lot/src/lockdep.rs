//! Runtime lock-order checker (compiled only with the `lockdep` feature).
//!
//! Every [`Mutex`](crate::Mutex)/[`RwLock`](crate::RwLock) carries a
//! [`LockTag`]: the `file:line:column` **site** that constructed it (its
//! lock *class* — every lock born at one source location shares a class,
//! like kernel lockdep) plus a lazily assigned instance id. Acquisitions
//! maintain
//!
//! * a per-thread stack of currently held locks, and
//! * a process-global *acquired-before* graph: the edge `A → B` means
//!   some thread once acquired a `B`-class lock while holding an
//!   `A`-class lock, recorded with the full acquisition chain that first
//!   produced it.
//!
//! Acquiring `B` while holding `A` first checks whether the graph already
//! proves `B → … → A`: if so, the two orders form a cycle — an ABBA
//! deadlock waiting for the right interleaving — and the checker panics
//! **at acquisition time** with both conflicting chains, even though this
//! particular run would have completed fine. That is the point: the
//! entire existing test suite doubles as a lock-discipline proof without
//! any test having to race the actual deadlock.
//!
//! Two deliberate conservatisms:
//!
//! * `RwLock` readers count as full acquisitions — a read-read inversion
//!   is flagged although it only deadlocks when a writer wedges between
//!   the readers (writer-priority lock implementations do exactly that);
//! * nesting two locks of the *same* class panics immediately — nothing
//!   ranks the instances, so the reversed nesting is always also
//!   possible. (Re-entering the very same instance additionally reports
//!   itself as a self-deadlock rather than hanging.)

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::panic::Location;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// What kind of acquisition a held-stack entry records (reported in
/// panic messages; the ordering rules treat all three identically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `Mutex::lock`.
    Mutex,
    /// `RwLock::read`.
    RwLockRead,
    /// `RwLock::write`.
    RwLockWrite,
}

impl fmt::Display for LockKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LockKind::Mutex => "lock",
            LockKind::RwLockRead => "read",
            LockKind::RwLockWrite => "write",
        })
    }
}

/// A lock class: the source location that constructed the lock.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Site {
    file: &'static str,
    line: u32,
    column: u32,
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.file, self.line, self.column)
    }
}

impl Site {
    fn of(location: &'static Location<'static>) -> Self {
        Site {
            file: location.file(),
            line: location.line(),
            column: location.column(),
        }
    }
}

/// The per-lock tag: construction site plus a lazily assigned instance
/// id (`const fn new` cannot tick a global counter, so the id is drawn
/// on first acquisition).
pub(crate) struct LockTag {
    location: &'static Location<'static>,
    instance: OnceLock<u64>,
}

impl LockTag {
    /// Tags a lock with the caller's source location (the lock's class).
    #[track_caller]
    pub(crate) const fn here() -> Self {
        LockTag {
            location: Location::caller(),
            instance: OnceLock::new(),
        }
    }

    fn instance(&self) -> u64 {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        *self
            .instance
            .get_or_init(|| NEXT.fetch_add(1, Ordering::Relaxed))
    }
}

impl Default for LockTag {
    /// `Default`-constructed locks are tagged with the `default()` call
    /// site.
    #[track_caller]
    fn default() -> Self {
        LockTag {
            location: Location::caller(),
            instance: OnceLock::new(),
        }
    }
}

/// One entry of a thread's held-lock stack.
#[derive(Clone, Copy)]
struct Held {
    site: Site,
    instance: u64,
    kind: LockKind,
}

thread_local! {
    /// The locks this thread currently holds, in acquisition order.
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
}

/// One recorded acquired-before edge: the full chain (outermost first)
/// that first established it.
struct Edge {
    chain: Vec<(Site, LockKind)>,
}

/// The process-global acquired-before graph.
#[derive(Default)]
struct Graph {
    edges: HashMap<Site, HashMap<Site, Edge>>,
}

impl Graph {
    /// A path `from → … → to` in the edge set, if one exists (DFS;
    /// returns the sites along the path including both endpoints).
    fn find_path(&self, from: Site, to: Site) -> Option<Vec<Site>> {
        let mut stack = vec![vec![from]];
        let mut visited = vec![from];
        while let Some(path) = stack.pop() {
            let last = *path.last().unwrap_or(&from);
            if last == to {
                return Some(path);
            }
            if let Some(nexts) = self.edges.get(&last) {
                for &next in nexts.keys() {
                    if !visited.contains(&next) {
                        visited.push(next);
                        let mut longer = path.clone();
                        longer.push(next);
                        stack.push(longer);
                    }
                }
            }
        }
        None
    }
}

fn graph() -> &'static Mutex<Graph> {
    static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();
    GRAPH.get_or_init(|| Mutex::new(Graph::default()))
}

/// Clears the global acquired-before graph. Test-only: lets independent
/// ordering scenarios in one process not see each other's edges.
pub fn reset_graph_for_tests() {
    graph().lock().unwrap_or_else(|e| e.into_inner()).edges = HashMap::new();
}

/// A registered acquisition; popping it off the thread's held stack on
/// drop is what keeps the stack matched to live guards even when guards
/// are dropped out of order.
pub(crate) struct Acquired {
    site: Site,
    instance: u64,
}

impl Drop for Acquired {
    fn drop(&mut self) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            // Guards may be dropped out of stack order; remove the last
            // matching entry rather than assuming it is on top.
            if let Some(pos) = held
                .iter()
                .rposition(|h| h.site == self.site && h.instance == self.instance)
            {
                held.remove(pos);
            }
        });
    }
}

fn format_chain(chain: &[(Site, LockKind)]) -> String {
    let mut out = String::new();
    for (i, (site, kind)) in chain.iter().enumerate() {
        if i > 0 {
            out.push_str(" -> ");
        }
        out.push_str(&format!("{kind}({site})"));
    }
    out
}

/// Registers an acquisition of the lock tagged `tag`: checks the
/// attempt against the acquired-before graph (panicking on any cycle),
/// records the new edges, and pushes the lock onto the thread's held
/// stack. The returned token pops the stack when dropped.
pub(crate) fn acquire(tag: &LockTag, kind: LockKind) -> Acquired {
    let site = Site::of(tag.location);
    let instance = tag.instance();
    HELD.with(|held| {
        let snapshot: Vec<Held> = held.borrow().clone();
        if let Some(conflict) = snapshot.iter().find(|h| h.site == site) {
            let chain = current_chain(&snapshot, site, kind);
            if conflict.instance == instance {
                panic!(
                    "lockdep: recursive acquisition — this thread already holds the lock \
                     created at {site} and would deadlock re-acquiring it\n  \
                     chain: {chain}"
                );
            }
            panic!(
                "lockdep: same-class nesting — two locks created at {site} are held at \
                 once; nothing orders the instances, so the reversed nesting is an ABBA \
                 deadlock\n  chain: {chain}"
            );
        }
        if !snapshot.is_empty() {
            check_and_record(&snapshot, site, kind);
        }
        held.borrow_mut().push(Held {
            site,
            instance,
            kind,
        });
    });
    Acquired { site, instance }
}

/// The would-be acquisition chain, for messages: everything held plus
/// the lock being acquired.
fn current_chain(snapshot: &[Held], site: Site, kind: LockKind) -> String {
    let mut chain: Vec<(Site, LockKind)> = snapshot.iter().map(|h| (h.site, h.kind)).collect();
    chain.push((site, kind));
    format_chain(&chain)
}

/// Cycle check + edge recording for an acquisition of `site` while
/// `snapshot` is held. Panics (outside the registry lock) on inversion.
fn check_and_record(snapshot: &[Held], site: Site, kind: LockKind) {
    let inversion: Option<String> = {
        let mut graph = graph().lock().unwrap_or_else(|e| e.into_inner());
        let mut message = None;
        for h in snapshot {
            if let Some(path) = graph.find_path(site, h.site) {
                let mut lines = String::new();
                for pair in path.windows(2) {
                    let edge = &graph.edges[&pair[0]][&pair[1]];
                    lines.push_str(&format!(
                        "\n    {} -> {} first recorded by chain: {}",
                        pair[0],
                        pair[1],
                        format_chain(&edge.chain)
                    ));
                }
                message = Some(format!(
                    "lockdep: lock-order inversion — acquiring the lock created at {site} \
                     while holding the lock created at {held}, but the reverse order \
                     {site} -> … -> {held} is already established:{lines}\n  \
                     conflicting chain: {chain}",
                    held = h.site,
                    chain = current_chain(snapshot, site, kind),
                ));
                break;
            }
        }
        if message.is_none() {
            // No cycle: record every held-before-acquired edge with the
            // chain that produced it.
            let chain: Vec<(Site, LockKind)> = snapshot
                .iter()
                .map(|h| (h.site, h.kind))
                .chain(std::iter::once((site, kind)))
                .collect();
            for h in snapshot {
                graph
                    .edges
                    .entry(h.site)
                    .or_default()
                    .entry(site)
                    .or_insert_with(|| Edge {
                        chain: chain.clone(),
                    });
            }
        }
        message
        // The registry guard drops here, before any panic, so the
        // diagnostic itself can never wedge other threads.
    };
    if let Some(message) = inversion {
        panic!("{message}");
    }
}

#[cfg(test)]
mod tests {
    use crate::{Condvar, Mutex, RwLock};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Runs `f` and returns the panic message it died with, if any.
    fn panic_message(f: impl FnOnce()) -> Option<String> {
        match catch_unwind(AssertUnwindSafe(f)) {
            Ok(()) => None,
            Err(payload) => Some(
                payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_default(),
            ),
        }
    }

    #[test]
    fn consistent_order_is_clean() {
        let a = Mutex::new(0);
        let b = Mutex::new(0);
        for _ in 0..3 {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        // Same order again, separately: still clean.
        let _ga = a.lock();
        let _gb = b.lock();
    }

    #[test]
    fn abba_inversion_is_detected_without_a_race() {
        // One thread, no actual deadlock: lockdep flags the *order*, not
        // the hang. A then B establishes A -> B; B then A closes the
        // cycle and panics at acquisition time.
        let a = Mutex::new(0);
        let b = Mutex::new(0);
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        let message = panic_message(|| {
            let _gb = b.lock();
            let _ga = a.lock();
        })
        .expect("the inverted acquisition panics");
        assert!(message.contains("lock-order inversion"), "{message}");
        assert!(message.contains("conflicting chain"), "{message}");
    }

    #[test]
    fn cross_thread_inversion_is_detected() {
        // The acquired-before graph is process-global: thread 1 takes
        // A then B and exits cleanly; thread 2 taking B then A is the
        // classic ABBA pair and panics even though the threads never
        // actually contend.
        use std::sync::Arc;
        let a = Arc::new(Mutex::new(0));
        let b = Arc::new(Mutex::new(0));
        {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            std::thread::spawn(move || {
                let _ga = a.lock();
                let _gb = b.lock();
            })
            .join()
            .expect("forward order is clean");
        }
        let second = {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            std::thread::spawn(move || {
                let _gb = b.lock();
                let _ga = a.lock();
            })
            .join()
        };
        let payload = second.expect_err("the reversed order panics");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(message.contains("lock-order inversion"), "{message}");
    }

    #[test]
    fn transitive_inversion_is_detected() {
        // A -> B and B -> C established; C then A closes the 3-cycle.
        let a = Mutex::new(0);
        let b = Mutex::new(0);
        let c = Mutex::new(0);
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        {
            let _gb = b.lock();
            let _gc = c.lock();
        }
        let message = panic_message(|| {
            let _gc = c.lock();
            let _ga = a.lock();
        })
        .expect("the transitive inversion panics");
        assert!(message.contains("lock-order inversion"), "{message}");
    }

    #[test]
    fn rwlock_orders_count_like_mutexes() {
        let state = Mutex::new(0);
        let store = RwLock::new(0);
        {
            let _gs = state.lock();
            let _gw = store.write();
        }
        let message = panic_message(|| {
            let _gr = store.read();
            let _gs = state.lock();
        })
        .expect("read-side inversion panics too");
        assert!(message.contains("lock-order inversion"), "{message}");
    }

    #[test]
    fn recursive_acquisition_is_reported_not_hung() {
        let m = Mutex::new(0);
        let message = panic_message(|| {
            let _g1 = m.lock();
            let _g2 = m.lock();
        })
        .expect("re-entry panics instead of deadlocking");
        assert!(message.contains("recursive acquisition"), "{message}");
    }

    #[test]
    fn same_class_nesting_is_flagged() {
        // Two locks born at one source line are one class: nesting them
        // is unordered and therefore a hazard.
        let locks: Vec<Mutex<u8>> = (0..2).map(|_| Mutex::new(0)).collect();
        let message = panic_message(|| {
            let _g0 = locks[0].lock();
            let _g1 = locks[1].lock();
        })
        .expect("same-class nesting panics");
        assert!(message.contains("same-class nesting"), "{message}");
    }

    #[test]
    fn condvar_wait_releases_and_reacquires_in_order() {
        // Waiting drops the mutex from the held stack (other locks may be
        // taken by the woken code path without phantom edges) and the
        // reacquisition is re-checked.
        let m = Mutex::new(0u32);
        let cv = Condvar::new();
        let mut g = m.lock();
        // Nothing else is held, so the wait must come back cleanly; use a
        // pre-notified predicate loop shape without a second thread.
        *g = 1;
        cv.notify_all();
        // A zero-iteration predicate loop: already satisfied, no wait.
        while *g == 0 {
            cv.wait(&mut g);
        }
        drop(g);
        // The lock is released and usable.
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn guards_dropped_out_of_order_keep_the_stack_sound() {
        let a = Mutex::new(0);
        let b = Mutex::new(0);
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // out of stack order
        drop(gb);
        // Stack is empty again: taking b alone then a alone is clean.
        let _gb = b.lock();
        drop(_gb);
        let _ga = a.lock();
    }
}
