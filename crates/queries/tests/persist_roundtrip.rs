//! Store persistence properties: a decoded store is indistinguishable
//! from the live store it was encoded from — same contents, same posting
//! counts, byte-identical TkPRQ/TkFRPQ answers, same behaviour under
//! further appends and seals — and corrupt bytes always fail typed.

use ism_codec::{CodecError, Decode, Encode};
use ism_indoor::RegionId;
use ism_mobility::{MobilityEvent, MobilitySemantics, TimePeriod};
use ism_queries::{
    tk_frpq_sharded, tk_prq_sharded, QueryBatch, ShardedSemanticsStore, ShardedStoreBuilder,
};
use ism_runtime::WorkerPool;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random store: sealed base contents plus a random pending segment.
fn random_store(rng: &mut StdRng) -> ShardedSemanticsStore {
    let shards = rng.random_range(1..6);
    let mut builder = ShardedStoreBuilder::new(shards);
    let objects = rng.random_range(0..30u64);
    for _ in 0..objects {
        let id = rng.random_range(0..20u64);
        builder.insert(id, random_run(rng));
    }
    let mut store = builder.build();
    for _ in 0..rng.random_range(0..10u64) {
        let id = rng.random_range(0..25u64);
        store.append(id, random_run(rng));
    }
    store
}

fn random_run(rng: &mut StdRng) -> Vec<MobilitySemantics> {
    let len = rng.random_range(1..6);
    let mut t = rng.random_range(0.0..500.0);
    (0..len)
        .map(|_| {
            let start = t;
            let dur = rng.random_range(0.5..40.0);
            t = start + dur + rng.random_range(0.0..5.0);
            MobilitySemantics {
                region: RegionId(rng.random_range(0..8)),
                period: TimePeriod::new(start, start + dur),
                event: if rng.random_bool(0.7) {
                    MobilityEvent::Stay
                } else {
                    MobilityEvent::Pass
                },
            }
        })
        .collect()
}

proptest! {
    /// Encode → decode → every query answer byte-identical to the live
    /// store, across shard layouts and thread counts.
    #[test]
    fn reopened_store_answers_queries_byte_identically(seed in 0u64..96) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut live = random_store(&mut rng);
        live.seal();
        let decoded = ShardedSemanticsStore::from_bytes(&live.to_bytes()).unwrap();
        prop_assert_eq!(decoded.num_postings(), live.num_postings());

        let regions: Vec<RegionId> = (0..8).map(RegionId).collect();
        for threads in [1, 3] {
            let pool = WorkerPool::new(threads);
            for qt in [
                TimePeriod::new(0.0, 1e9),
                TimePeriod::new(100.0, 300.0),
                TimePeriod::new(900.0, 901.0),
            ] {
                prop_assert_eq!(
                    tk_prq_sharded(&decoded, &regions, 4, qt, &pool),
                    tk_prq_sharded(&live, &regions, 4, qt, &pool)
                );
                prop_assert_eq!(
                    tk_frpq_sharded(&decoded, &regions, 4, qt, &pool),
                    tk_frpq_sharded(&live, &regions, 4, qt, &pool)
                );
            }
        }
        // The batched path agrees too.
        let mut batch = QueryBatch::new();
        batch.tk_prq(&regions, 3, TimePeriod::new(0.0, 1e9));
        batch.tk_frpq(&regions, 3, TimePeriod::new(0.0, 1e9));
        let pool = WorkerPool::new(2);
        prop_assert_eq!(batch.run(&decoded, &pool), batch.run(&live, &pool));
    }

    /// A store serialized mid-stream (pending entries unsealed) resumes
    /// exactly: the decoded copy seals to the same contents and keeps
    /// accepting appends like the original.
    #[test]
    fn mid_stream_store_resumes_exactly(seed in 0u64..96) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EA1);
        let mut live = random_store(&mut rng);
        let mut decoded = ShardedSemanticsStore::from_bytes(&live.to_bytes()).unwrap();
        prop_assert_eq!(decoded.num_pending(), live.num_pending());

        // The same post-restart traffic lands identically on both.
        let extra: Vec<(u64, Vec<MobilitySemantics>)> = (0..rng.random_range(0..6u64))
            .map(|_| (rng.random_range(0..25u64), random_run(&mut rng)))
            .collect();
        for (id, run) in &extra {
            live.append(*id, run.clone());
            decoded.append(*id, run.clone());
        }
        prop_assert_eq!(decoded.seal_summarized(), live.seal_summarized());
        prop_assert_eq!(decoded.to_bytes(), live.to_bytes());
    }

    /// Bit-flipped or truncated encodings fail typed — never a panic,
    /// never an allocation sized by corrupt bytes.
    #[test]
    fn corrupt_store_bytes_fail_typed(seed in 0u64..256) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0DE);
        let live = random_store(&mut rng);
        let bytes = live.to_bytes();

        // The raw store codec is unframed (no CRC — files add it via
        // `ism_codec::write_artifact`), so a flip may legitimately decode
        // to a *different* store; the property is: no panic, and any
        // success lands on a stable canonical form.
        let flip = rng.random_range(0..bytes.len() * 8);
        let mut corrupt = bytes.clone();
        corrupt[flip / 8] ^= 1 << (flip % 8);
        if let Ok(decoded) = ShardedSemanticsStore::from_bytes(&corrupt) {
            let canonical = decoded.to_bytes();
            let again = ShardedSemanticsStore::from_bytes(&canonical).unwrap();
            prop_assert_eq!(again.to_bytes(), canonical);
        }

        let cut = rng.random_range(0..bytes.len());
        match ShardedSemanticsStore::from_bytes(&bytes[..cut]) {
            Ok(_) => prop_assert!(false, "strict truncation to {} bytes decoded", cut),
            Err(
                CodecError::Truncated { .. }
                | CodecError::InvalidValue { .. }
                | CodecError::TrailingBytes { .. },
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error: {:?}", other),
        }
    }
}
