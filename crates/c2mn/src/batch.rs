//! Parallel batch annotation engine.
//!
//! The paper's evaluation annotated five million records on a 10-core
//! machine; [`BatchAnnotator`] is the reproduction's counterpart. It shards
//! a batch of independent p-sequences across a persistent worker pool
//! ([`ism_runtime::WorkerPool`]) and decodes each with
//! [`C2mn::label_with`], reusing one [`DecodeScratch`] per worker. An
//! annotator either owns a pool ([`BatchAnnotator::new`]) or shares an
//! existing one ([`BatchAnnotator::with_pool`] — the engine path, so no
//! threads are ever created per batch).
//!
//! ## Determinism contract
//!
//! Sequence `i` is decoded with an RNG seeded from
//! [`sequence_seed`]`(base_seed, i)` — a function of the *item index
//! only*, never of the worker that happens to run it. Output is therefore
//! byte-identical for any thread count, and identical to the sequential
//! reference:
//!
//! ```text
//! for (i, seq) in sequences.iter().enumerate() {
//!     let mut rng = StdRng::seed_from_u64(sequence_seed(base_seed, i));
//!     model.annotate(seq, &mut rng);
//! }
//! ```

use crate::model::DecodeScratch;
use crate::C2mn;
use ism_indoor::RegionId;
use ism_mobility::{MobilityEvent, MobilitySemantics, PositioningRecord};
use ism_queries::{ShardedSemanticsStore, ShardedStoreBuilder};
use ism_runtime::WorkerPool;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives the RNG seed of sequence `index` within a batch keyed by
/// `base_seed`.
///
/// SplitMix64-style finalisation over `base_seed ⊕ (index · φ64)`:
/// neighbouring indices get uncorrelated streams, and the derivation is
/// part of the public determinism contract so sequential callers can
/// reproduce batch output exactly.
pub fn sequence_seed(base_seed: u64, index: usize) -> u64 {
    crate::sample::splitmix64(base_seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Decodes batches of p-sequences in parallel with deterministic output.
///
/// Each worker owns one [`DecodeScratch`], so the memoized sweep caches of
/// [`C2mn::label_with`] are reused (and re-targeted) across the sequences a
/// worker claims — the per-worker kernel counters are flushed into
/// [`ism_pgm::kernel_stats`] after every decode.
///
/// ```
/// # use ism_c2mn::{BatchAnnotator, C2mn, C2mnConfig, Weights};
/// # use ism_indoor::BuildingGenerator;
/// # use ism_mobility::{Dataset, PositioningConfig, SimulationConfig};
/// # use rand::rngs::StdRng;
/// # use rand::SeedableRng;
/// # let mut rng = StdRng::seed_from_u64(1);
/// # let space = BuildingGenerator::small_office().generate(&mut rng).unwrap();
/// # let dataset = Dataset::generate(
/// #     "d", &space, SimulationConfig::quick(),
/// #     PositioningConfig::synthetic(8.0, 1.5), None, 4, &mut rng);
/// # let model = C2mn::from_weights(&space, C2mnConfig::quick_test(), Weights::uniform(1.0));
/// let sequences: Vec<Vec<_>> = dataset
///     .sequences
///     .iter()
///     .map(|s| s.positioning().collect())
///     .collect();
/// let engine = BatchAnnotator::new(&model, 4, 42);
/// let labels = engine.label_batch(&sequences);
/// assert_eq!(labels.len(), sequences.len());
/// ```
pub struct BatchAnnotator<'m, 'a> {
    model: &'m C2mn<'a>,
    pool: WorkerPool,
    base_seed: u64,
}

impl<'m, 'a> BatchAnnotator<'m, 'a> {
    /// Creates an engine decoding on `threads` workers (clamped to ≥ 1),
    /// deriving per-sequence RNGs from `base_seed`. The persistent worker
    /// threads are created here, once, and shared by every batch call.
    pub fn new(model: &'m C2mn<'a>, threads: usize, base_seed: u64) -> Self {
        BatchAnnotator::with_pool(model, &WorkerPool::new(threads), base_seed)
    }

    /// Creates an engine decoding on an existing pool's workers — a cloned
    /// handle onto the same persistent threads, so callers that already
    /// own a pool (the `ism-engine` serving path) never create threads per
    /// annotator or per batch.
    pub fn with_pool(model: &'m C2mn<'a>, pool: &WorkerPool, base_seed: u64) -> Self {
        BatchAnnotator {
            model,
            pool: pool.clone(),
            base_seed,
        }
    }

    /// Creates an engine sized to the machine's available parallelism.
    pub fn with_available_parallelism(model: &'m C2mn<'a>, base_seed: u64) -> Self {
        BatchAnnotator {
            model,
            pool: WorkerPool::with_available_parallelism(),
            base_seed,
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The batch base seed.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// Labels every sequence of the batch with per-record (region, event)
    /// pairs. Results are in input order and independent of thread count.
    pub fn label_batch(
        &self,
        sequences: &[Vec<PositioningRecord>],
    ) -> Vec<Vec<(RegionId, MobilityEvent)>> {
        self.pool
            .run_with(sequences.len(), DecodeScratch::new, |scratch, i| {
                let mut rng = StdRng::seed_from_u64(sequence_seed(self.base_seed, i));
                self.model.label_with(&sequences[i], &mut rng, scratch)
            })
    }

    /// Annotates every sequence of the batch into merged m-semantics
    /// (label-and-merge). Results are in input order and independent of
    /// thread count.
    pub fn annotate_batch(
        &self,
        sequences: &[Vec<PositioningRecord>],
    ) -> Vec<Vec<MobilitySemantics>> {
        self.annotate_batch_at(0, sequences)
    }

    /// Annotates `sequences` as the slice starting at global index
    /// `first_index` of a larger logical batch: sequence `i` of the slice
    /// is decoded with the seed of global sequence `first_index + i`.
    ///
    /// This is the streaming-session decode hook (`ism-engine`): a session
    /// drains its submission queue in chunks, and because each chunk is
    /// decoded at its global offset, the concatenated output is
    /// byte-identical to one [`BatchAnnotator::annotate_batch`] over the
    /// whole stream — for any chunking and any thread count.
    pub fn annotate_batch_at(
        &self,
        first_index: u64,
        sequences: &[Vec<PositioningRecord>],
    ) -> Vec<Vec<MobilitySemantics>> {
        self.pool
            .run_with(sequences.len(), DecodeScratch::new, |scratch, i| {
                let seed = sequence_seed(self.base_seed, first_index as usize + i);
                let mut rng = StdRng::seed_from_u64(seed);
                self.model.annotate_with(&sequences[i], &mut rng, scratch)
            })
    }

    /// Annotates the batch straight into a sharded semantics store: each
    /// worker folds its sequences' m-semantics into per-shard partial
    /// builders (map), partial builders merge, and shard indexes build in
    /// parallel (reduce) — no intermediate flat collection of the batch.
    ///
    /// `object_ids[i]` is the object owning `sequences[i]`; repeated ids
    /// (e.g. one object's chunked sub-sequences) extend a single store
    /// entry in item order. Entries carry their item index, so the result
    /// is byte-identical for any thread count and equal to inserting
    /// `annotate_batch` output into a [`ShardedStoreBuilder`] sequentially.
    pub fn annotate_into_store(
        &self,
        sequences: &[Vec<PositioningRecord>],
        object_ids: &[u64],
        num_shards: usize,
    ) -> ShardedSemanticsStore {
        assert_eq!(
            sequences.len(),
            object_ids.len(),
            "one object id per sequence"
        );
        let (_, builder) = self.pool.map_reduce(
            sequences.len(),
            || (DecodeScratch::new(), ShardedStoreBuilder::new(num_shards)),
            |(scratch, builder), i| {
                let mut rng = StdRng::seed_from_u64(sequence_seed(self.base_seed, i));
                let semantics = self.model.annotate_with(&sequences[i], &mut rng, scratch);
                builder.insert_at(i as u64, object_ids[i], semantics);
            },
            |(_, total), (_, partial)| {
                total
                    .merge(partial)
                    .expect("partial builders share the target shard count");
            },
        );
        builder.build_with(&self.pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{C2mnConfig, Weights};
    use ism_indoor::BuildingGenerator;
    use ism_mobility::{Dataset, PositioningConfig, SimulationConfig};

    fn setup() -> (ism_indoor::IndoorSpace, Vec<Vec<PositioningRecord>>) {
        let mut rng = StdRng::seed_from_u64(1);
        let space = BuildingGenerator::small_office()
            .generate(&mut rng)
            .unwrap();
        let dataset = Dataset::generate(
            "b",
            &space,
            SimulationConfig::quick(),
            PositioningConfig::synthetic(8.0, 1.5),
            None,
            6,
            &mut rng,
        );
        let sequences = dataset
            .sequences
            .iter()
            .map(|s| s.positioning().collect())
            .collect();
        (space, sequences)
    }

    #[test]
    fn sequence_seed_is_injective_over_small_batches() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            assert!(seen.insert(sequence_seed(42, i)), "collision at {i}");
        }
        // Different base seeds decorrelate.
        assert_ne!(sequence_seed(1, 0), sequence_seed(2, 0));
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let (space, sequences) = setup();
        let model = C2mn::from_weights(&space, C2mnConfig::quick_test(), Weights::uniform(1.0));
        let reference = BatchAnnotator::new(&model, 1, 7).label_batch(&sequences);
        for threads in [2, 3, 4] {
            let out = BatchAnnotator::new(&model, threads, 7).label_batch(&sequences);
            assert_eq!(out, reference, "threads = {threads}");
        }
    }

    #[test]
    fn batch_matches_sequential_annotate() {
        let (space, sequences) = setup();
        let model = C2mn::from_weights(&space, C2mnConfig::quick_test(), Weights::uniform(1.0));
        let engine = BatchAnnotator::new(&model, 4, 99);
        let batch = engine.annotate_batch(&sequences);
        for (i, seq) in sequences.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(sequence_seed(99, i));
            assert_eq!(batch[i], model.annotate(seq, &mut rng));
        }
    }

    #[test]
    fn annotate_into_store_matches_sequential_builder() {
        let (space, sequences) = setup();
        let model = C2mn::from_weights(&space, C2mnConfig::quick_test(), Weights::uniform(1.0));
        // Duplicate ids on purpose: chunked sub-sequences of one object.
        let object_ids: Vec<u64> = (0..sequences.len() as u64).map(|i| i % 4).collect();
        let reference = {
            let engine = BatchAnnotator::new(&model, 1, 21);
            let mut builder = ShardedStoreBuilder::new(3);
            for (id, semantics) in object_ids.iter().zip(engine.annotate_batch(&sequences)) {
                builder.insert(*id, semantics);
            }
            builder.build()
        };
        for threads in [1, 2, 4] {
            let engine = BatchAnnotator::new(&model, threads, 21);
            let store = engine.annotate_into_store(&sequences, &object_ids, 3);
            assert_eq!(store.num_shards(), 3);
            assert_eq!(store.len(), 4);
            for s in 0..store.num_shards() {
                let got: Vec<_> = store
                    .iter_shard(s)
                    .map(|(id, sem)| (id, sem.to_vec()))
                    .collect();
                let want: Vec<_> = reference
                    .iter_shard(s)
                    .map(|(id, sem)| (id, sem.to_vec()))
                    .collect();
                assert_eq!(got, want, "shard {s} diverged at threads = {threads}");
            }
        }
    }

    #[test]
    fn chunked_decode_at_offsets_matches_whole_batch() {
        // Decoding a batch in chunks via `annotate_batch_at` — each chunk
        // at its global offset — must concatenate to the whole-batch
        // output, for any chunking and thread count.
        let (space, sequences) = setup();
        let model = C2mn::from_weights(&space, C2mnConfig::quick_test(), Weights::uniform(1.0));
        let reference = BatchAnnotator::new(&model, 1, 13).annotate_batch(&sequences);
        for threads in [1, 3] {
            for chunk in [1, 2, sequences.len()] {
                let engine = BatchAnnotator::new(&model, threads, 13);
                let mut out = Vec::new();
                let mut first = 0u64;
                for slice in sequences.chunks(chunk) {
                    out.extend(engine.annotate_batch_at(first, slice));
                    first += slice.len() as u64;
                }
                assert_eq!(out, reference, "threads = {threads}, chunk = {chunk}");
            }
        }
    }

    #[test]
    fn empty_batch_and_empty_sequences() {
        let (space, _) = setup();
        let model = C2mn::from_weights(&space, C2mnConfig::quick_test(), Weights::uniform(1.0));
        let engine = BatchAnnotator::new(&model, 4, 0);
        assert!(engine.label_batch(&[]).is_empty());
        let out = engine.label_batch(&[Vec::new()]);
        assert_eq!(out, vec![Vec::new()]);
    }
}
