//! Polyline utilities: path length and turn counting.
//!
//! The event-based segmentation feature `fes` of the paper uses the number
//! of *turns* along the observed locations (footnote 4: a location is a turn
//! when the angle between the incoming and outgoing displacement exceeds
//! 90°, i.e. the displacement dot product is negative).

use crate::Point2;

/// Total Euclidean length of the polyline through `points`.
///
/// Returns `0.0` for fewer than two points.
pub fn path_length(points: &[Point2]) -> f64 {
    points.windows(2).map(|w| w[0].distance(w[1])).sum()
}

/// Whether the middle location of the triple `(prev, cur, next)` is a turn.
///
/// Per the paper's footnote 4 a turn occurs when the angle between the
/// segment `prev → cur` and the segment `cur → next` exceeds 90 degrees,
/// which is equivalent to a negative dot product of the two displacement
/// vectors. Zero-length displacements never produce a turn.
#[inline]
pub fn is_turn(prev: Point2, cur: Point2, next: Point2) -> bool {
    let u = cur - prev;
    let v = next - cur;
    if u.norm_sq() <= f64::EPSILON || v.norm_sq() <= f64::EPSILON {
        return false;
    }
    u.dot(v) < 0.0
}

/// Number of turns along the polyline through `points` (footnote 4).
pub fn count_turns(points: &[Point2]) -> usize {
    if points.len() < 3 {
        return 0;
    }
    points
        .windows(3)
        .filter(|w| is_turn(w[0], w[1], w[2]))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    #[test]
    fn length_of_l_shape() {
        let pts = [p(0.0, 0.0), p(3.0, 0.0), p(3.0, 4.0)];
        assert_eq!(path_length(&pts), 7.0);
        assert_eq!(path_length(&pts[..1]), 0.0);
        assert_eq!(path_length(&[]), 0.0);
    }

    #[test]
    fn right_angle_is_not_turn() {
        // Exactly 90° has dot product 0, which does not exceed 90°.
        assert!(!is_turn(p(0.0, 0.0), p(1.0, 0.0), p(1.0, 1.0)));
    }

    #[test]
    fn reversal_is_turn() {
        assert!(is_turn(p(0.0, 0.0), p(1.0, 0.0), p(0.5, 0.0)));
        assert!(is_turn(p(0.0, 0.0), p(1.0, 0.0), p(0.5, 0.2)));
    }

    #[test]
    fn straight_line_no_turns() {
        let pts: Vec<Point2> = (0..10).map(|i| p(i as f64, 0.0)).collect();
        assert_eq!(count_turns(&pts), 0);
    }

    #[test]
    fn zigzag_counts_every_interior_vertex() {
        // Sharp zigzag: each interior vertex reverses direction by > 90°.
        let pts = [p(0.0, 0.0), p(1.0, 1.0), p(2.0, 0.0), p(3.0, 1.0)];
        // Angle at each interior vertex between (1,1)&(1,-1): dot = 0 → not a turn.
        assert_eq!(count_turns(&pts), 0);
        let sharp = [p(0.0, 0.0), p(2.0, 0.2), p(0.1, 0.4), p(2.0, 0.6)];
        assert_eq!(count_turns(&sharp), 2);
    }

    #[test]
    fn stationary_points_do_not_turn() {
        let pts = [p(0.0, 0.0), p(0.0, 0.0), p(1.0, 0.0)];
        assert_eq!(count_turns(&pts), 0);
    }
}
