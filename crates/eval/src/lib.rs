//! Evaluation metrics and data-splitting utilities (§V-A).
//!
//! * **RA / EA** — region / event labeling accuracy (fraction of records
//!   whose region / event label is correct),
//! * **CA** — combined accuracy `λ·RA + (1−λ)·EA` (the paper uses
//!   `λ = 0.7`),
//! * **PA** — perfect accuracy (both labels correct),
//! * **top-k precision** — fraction of true top-k results returned by a
//!   top-k query,
//! * train/test splitting and k-fold cross-validation index generation.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use ism_indoor::RegionId;
use ism_mobility::MobilityEvent;
use rand::Rng;

/// The paper's trade-off parameter for combined accuracy.
pub const PAPER_LAMBDA: f64 = 0.7;

/// Record-level labeling accuracies.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LabelAccuracy {
    /// Region accuracy (RA).
    pub region: f64,
    /// Event accuracy (EA).
    pub event: f64,
    /// Perfect accuracy (PA): both labels correct.
    pub perfect: f64,
    /// Number of records evaluated.
    pub total: usize,
}

impl LabelAccuracy {
    /// Combined accuracy `CA = λ·RA + (1−λ)·EA`.
    pub fn combined(&self, lambda: f64) -> f64 {
        lambda * self.region + (1.0 - lambda) * self.event
    }
}

/// Combined accuracy helper (free-function form).
pub fn combined_accuracy(acc: &LabelAccuracy, lambda: f64) -> f64 {
    acc.combined(lambda)
}

/// Perfect accuracy helper (free-function form).
pub fn perfect_accuracy(acc: &LabelAccuracy) -> f64 {
    acc.perfect
}

/// Streaming accumulator of labeling accuracy across sequences.
#[derive(Debug, Clone, Copy, Default)]
pub struct AccuracyAccumulator {
    correct_region: usize,
    correct_event: usize,
    correct_both: usize,
    total: usize,
}

impl AccuracyAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one labelled sequence: predictions vs ground truth.
    pub fn add<I>(&mut self, predicted: &[(RegionId, MobilityEvent)], truth: I)
    where
        I: IntoIterator<Item = (RegionId, MobilityEvent)>,
    {
        for (p, t) in predicted.iter().zip(truth) {
            let r_ok = p.0 == t.0;
            let e_ok = p.1 == t.1;
            self.correct_region += usize::from(r_ok);
            self.correct_event += usize::from(e_ok);
            self.correct_both += usize::from(r_ok && e_ok);
            self.total += 1;
        }
    }

    /// Finalises the metrics.
    pub fn finish(&self) -> LabelAccuracy {
        let n = self.total.max(1) as f64;
        LabelAccuracy {
            region: self.correct_region as f64 / n,
            event: self.correct_event as f64 / n,
            perfect: self.correct_both as f64 / n,
            total: self.total,
        }
    }
}

/// Precision of a top-k result: `|returned ∩ truth| / k`.
///
/// Duplicates in either list are ignored; `k` is the length of the truth
/// list (callers pass the true top-k).
pub fn top_k_precision<T: PartialEq>(returned: &[T], truth: &[T]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let hits = returned.iter().filter(|r| truth.contains(r)).count();
    hits as f64 / truth.len() as f64
}

/// Generates k-fold cross-validation folds: a permutation of `0..n` split
/// into `k` near-equal chunks.
pub fn k_fold_indices<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Vec<Vec<usize>> {
    assert!(k >= 2, "need at least two folds");
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        idx.swap(i, j);
    }
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (pos, i) in idx.into_iter().enumerate() {
        folds[pos % k].push(i);
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use MobilityEvent::{Pass, Stay};

    fn r(i: u32) -> RegionId {
        RegionId(i)
    }

    #[test]
    fn accuracy_counts() {
        let mut acc = AccuracyAccumulator::new();
        let pred = vec![(r(0), Stay), (r(1), Pass), (r(2), Stay)];
        let truth = vec![(r(0), Stay), (r(1), Stay), (r(9), Stay)];
        acc.add(&pred, truth);
        let m = acc.finish();
        assert_eq!(m.total, 3);
        assert!((m.region - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.event - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.perfect - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn combined_accuracy_weighting() {
        let m = LabelAccuracy {
            region: 0.9,
            event: 0.5,
            perfect: 0.4,
            total: 10,
        };
        assert!((m.combined(PAPER_LAMBDA) - (0.7 * 0.9 + 0.3 * 0.5)).abs() < 1e-12);
        assert_eq!(m.combined(1.0), 0.9);
        assert_eq!(m.combined(0.0), 0.5);
    }

    #[test]
    fn accumulator_spans_sequences() {
        let mut acc = AccuracyAccumulator::new();
        acc.add(&[(r(0), Stay)], vec![(r(0), Stay)]);
        acc.add(&[(r(1), Pass)], vec![(r(2), Pass)]);
        let m = acc.finish();
        assert_eq!(m.total, 2);
        assert_eq!(m.region, 0.5);
        assert_eq!(m.event, 1.0);
    }

    #[test]
    fn empty_accumulator_is_zero() {
        let m = AccuracyAccumulator::new().finish();
        assert_eq!(m.total, 0);
        assert_eq!(m.region, 0.0);
    }

    #[test]
    fn top_k_precision_basic() {
        assert_eq!(top_k_precision(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(top_k_precision(&[1, 2, 4], &[1, 2, 3]), 2.0 / 3.0);
        assert_eq!(top_k_precision::<u32>(&[], &[1, 2]), 0.0);
        assert_eq!(top_k_precision::<u32>(&[1], &[]), 1.0);
    }

    #[test]
    fn empty_sequences_contribute_nothing() {
        let mut acc = AccuracyAccumulator::new();
        acc.add(&[], Vec::new());
        acc.add(&[], Vec::new());
        let m = acc.finish();
        assert_eq!(m.total, 0);
        assert_eq!(m.region, 0.0);
        assert_eq!(m.event, 0.0);
        assert_eq!(m.perfect, 0.0);
        assert_eq!(m.combined(PAPER_LAMBDA), 0.0);
    }

    #[test]
    fn all_correct_is_perfect_on_every_metric() {
        let mut acc = AccuracyAccumulator::new();
        let labels = vec![(r(0), Stay), (r(1), Pass), (r(2), Stay), (r(3), Pass)];
        acc.add(&labels, labels.clone());
        let m = acc.finish();
        assert_eq!(m.total, 4);
        assert_eq!(m.region, 1.0);
        assert_eq!(m.event, 1.0);
        assert_eq!(m.perfect, 1.0);
        assert_eq!(m.combined(PAPER_LAMBDA), 1.0);
        assert_eq!(combined_accuracy(&m, PAPER_LAMBDA), 1.0);
        assert_eq!(perfect_accuracy(&m), 1.0);
    }

    #[test]
    fn all_wrong_is_zero_on_every_metric() {
        let mut acc = AccuracyAccumulator::new();
        let pred = vec![(r(0), Stay), (r(1), Pass)];
        let truth = vec![(r(5), Pass), (r(6), Stay)];
        acc.add(&pred, truth);
        let m = acc.finish();
        assert_eq!(m.total, 2);
        assert_eq!(m.region, 0.0);
        assert_eq!(m.event, 0.0);
        assert_eq!(m.perfect, 0.0);
        assert_eq!(m.combined(PAPER_LAMBDA), 0.0);
    }

    #[test]
    fn combined_interpolates_between_components() {
        let m = LabelAccuracy {
            region: 0.8,
            event: 0.2,
            perfect: 0.1,
            total: 5,
        };
        // Endpoints are exactly the components...
        assert_eq!(m.combined(0.0), m.event);
        assert_eq!(m.combined(1.0), m.region);
        // ...and every λ in between stays inside [EA, RA], monotonically.
        let mut prev = m.combined(0.0);
        for step in 1..=10 {
            let ca = m.combined(step as f64 / 10.0);
            assert!(ca >= m.event - 1e-12 && ca <= m.region + 1e-12);
            assert!(ca >= prev - 1e-12, "CA must grow with λ when RA > EA");
            prev = ca;
        }
        // The paper's λ = 0.7 leans toward region accuracy.
        let ca = m.combined(PAPER_LAMBDA);
        assert!((ca - (0.7 * 0.8 + 0.3 * 0.2)).abs() < 1e-12);
        assert!((ca - m.region).abs() < (ca - m.event).abs());
    }

    #[test]
    fn k_folds_partition() {
        let mut rng = StdRng::seed_from_u64(1);
        let folds = k_fold_indices(23, 5, &mut rng);
        assert_eq!(folds.len(), 5);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..23).collect::<Vec<_>>());
        for f in &folds {
            assert!((4..=5).contains(&f.len()));
        }
    }
}
