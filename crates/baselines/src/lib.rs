//! Baseline annotation methods the paper compares against (§V-A).
//!
//! * [`Smot`] — SMoT (Alvares et al. [2]): a speed threshold separates
//!   stays from passes; regions come from nearest-neighbour matching of
//!   representative locations.
//! * [`HmmDc`] — HMM+DC (the paper's TRIPS system [12]): an HMM whose
//!   hidden states are regions and whose observations are grid cells,
//!   estimated by frequency counting and decoded with Viterbi; events come
//!   from ST-DBSCAN clustering (core/border → stay, noise → pass).
//! * [`SapDv`] / [`SapDa`] — the SAP layered framework (Yan et al. [26]):
//!   first segment the sequence into stay/pass segments
//!   (dynamic-velocity-based or density-area-based), then label stay
//!   segments with an HMM over regions (observation probability from the
//!   overlap of the segment's location distribution with the region) and
//!   pass records with their nearest regions.
//!
//! All methods produce record-level `(region, event)` labels; m-semantics
//! follow by `ism_mobility::merge_labels` exactly as for C2MN.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod hmm_dc;
mod sap;
mod smot;

pub use hmm_dc::{HmmDc, HmmDcConfig};
pub use sap::{SapConfig, SapDa, SapDv, Segmentation};
pub use smot::{Smot, SmotConfig};

use ism_cluster::{StDbscan, StDbscanParams, StPoint};
use ism_mobility::{MobilityEvent, PositioningRecord};

/// Event labels from ST-DBSCAN density classes: clustered records (core or
/// border) are stays, noise records are passes. Shared by HMM+DC and the
/// C2MN event initialisation.
pub fn density_events(
    records: &[PositioningRecord],
    params: &StDbscanParams,
) -> Vec<MobilityEvent> {
    let pts: Vec<StPoint> = records
        .iter()
        .map(|r| StPoint::new(r.location.xy, r.t, r.location.floor))
        .collect();
    StDbscan::new(*params)
        .run(&pts)
        .classes
        .iter()
        .map(|c| match c {
            ism_cluster::DensityClass::Noise => MobilityEvent::Pass,
            _ => MobilityEvent::Stay,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ism_geometry::Point2;
    use ism_indoor::IndoorPoint;

    #[test]
    fn density_events_split_cluster_and_noise() {
        let mut records: Vec<PositioningRecord> = (0..6)
            .map(|i| {
                PositioningRecord::new(
                    IndoorPoint::new(0, Point2::new(0.1 * i as f64, 0.0)),
                    10.0 * i as f64,
                )
            })
            .collect();
        records.push(PositioningRecord::new(
            IndoorPoint::new(0, Point2::new(500.0, 0.0)),
            70.0,
        ));
        let params = StDbscanParams {
            eps_s: 5.0,
            eps_t: 100.0,
            min_pts: 3,
        };
        let events = density_events(&records, &params);
        assert!(events[..6].iter().all(|e| *e == MobilityEvent::Stay));
        assert_eq!(events[6], MobilityEvent::Pass);
    }
}
