//! Vendored, offline subset of `parking_lot` backed by `std::sync`.
//!
//! Provides `RwLock` and `Mutex` with parking_lot's non-poisoning API
//! (`read()` / `write()` / `lock()` return guards directly). Poisoned std
//! locks are recovered via `into_inner`, matching parking_lot's behaviour
//! of ignoring panics in other threads.

use std::sync;

/// Re-export of the underlying read guard type.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Re-export of the underlying write guard type.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// Re-export of the underlying mutex guard type.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A reader-writer lock with parking_lot's non-poisoning interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new unlocked `RwLock`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock with parking_lot's non-poisoning interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new unlocked `Mutex`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(5);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
        assert_eq!(lock.into_inner(), 6);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_many_readers() {
        let lock = RwLock::new(1);
        let a = lock.read();
        let b = lock.read();
        assert_eq!(*a + *b, 2);
    }
}
