//! Linear-chain conditional random field.
//!
//! A classic CMN (§II-B of the paper): per-position unary features combined
//! with a learned label-transition matrix. Training maximises the exact
//! conditional log-likelihood via forward–backward marginals and L-BFGS;
//! decoding is Viterbi. C2MN generalises this model with coupled chains and
//! segment-level cliques; the linear chain remains useful as a baseline and
//! as a differentiable sanity check of the optimisation stack.

use crate::util::log_sum_exp;
use ism_optim::{minimize, LbfgsParams, Objective};

/// Configuration of a linear-chain CRF.
#[derive(Debug, Clone, Copy)]
pub struct ChainCrfConfig {
    /// Number of labels `K`.
    pub num_labels: usize,
    /// Dimensionality `d` of the per-(position, label) feature vector.
    pub feature_dim: usize,
    /// L2 regularisation strength (Gaussian prior `1/(2σ²)`).
    pub l2: f64,
}

/// One training sequence: features laid out `[t][label][feature]` and the
/// gold label per position.
#[derive(Debug, Clone)]
pub struct CrfSequence {
    /// Dense features, length `len × num_labels × feature_dim`.
    pub features: Vec<f64>,
    /// Gold labels, length `len`.
    pub labels: Vec<usize>,
}

impl CrfSequence {
    fn len(&self) -> usize {
        self.labels.len()
    }
}

/// A trained linear-chain CRF.
#[derive(Debug, Clone)]
pub struct ChainCrf {
    config: ChainCrfConfig,
    /// Parameters: `feature_dim` unary weights followed by the row-major
    /// `K × K` transition matrix.
    weights: Vec<f64>,
}

struct CrfObjective<'a> {
    config: ChainCrfConfig,
    data: &'a [CrfSequence],
}

impl CrfObjective<'_> {
    #[inline]
    fn unary(&self, w: &[f64], seq: &CrfSequence, t: usize, y: usize) -> f64 {
        let d = self.config.feature_dim;
        let base = (t * self.config.num_labels + y) * d;
        let feats = &seq.features[base..base + d];
        feats.iter().zip(&w[..d]).map(|(f, wi)| f * wi).sum()
    }
}

impl Objective for CrfObjective<'_> {
    fn dim(&self) -> usize {
        self.config.feature_dim + self.config.num_labels * self.config.num_labels
    }

    /// Negative conditional log-likelihood plus L2, with exact gradient.
    fn eval(&mut self, w: &[f64], grad: &mut [f64]) -> f64 {
        let k = self.config.num_labels;
        let d = self.config.feature_dim;
        grad.fill(0.0);
        let mut nll = 0.0;
        let trans = &w[d..];

        for seq in self.data {
            let n = seq.len();
            if n == 0 {
                continue;
            }
            // Unary scores.
            let mut scores = vec![0.0f64; n * k];
            for t in 0..n {
                for y in 0..k {
                    scores[t * k + y] = self.unary(w, seq, t, y);
                }
            }
            // Forward (alpha) and backward (beta) in log space.
            let mut alpha = vec![f64::NEG_INFINITY; n * k];
            alpha[..k].copy_from_slice(&scores[..k]);
            let mut buf = vec![0.0f64; k];
            for t in 1..n {
                for y in 0..k {
                    for (p, b) in buf.iter_mut().enumerate() {
                        *b = alpha[(t - 1) * k + p] + trans[p * k + y];
                    }
                    alpha[t * k + y] = log_sum_exp(&buf) + scores[t * k + y];
                }
            }
            let mut beta = vec![f64::NEG_INFINITY; n * k];
            for y in 0..k {
                beta[(n - 1) * k + y] = 0.0;
            }
            for t in (0..n - 1).rev() {
                for y in 0..k {
                    for (q, b) in buf.iter_mut().enumerate() {
                        *b = trans[y * k + q] + scores[(t + 1) * k + q] + beta[(t + 1) * k + q];
                    }
                    beta[t * k + y] = log_sum_exp(&buf);
                }
            }
            let log_z = log_sum_exp(&alpha[(n - 1) * k..n * k]);

            // Gold score.
            let mut gold = 0.0;
            for (t, &y) in seq.labels.iter().enumerate() {
                gold += scores[t * k + y];
                if t > 0 {
                    gold += trans[seq.labels[t - 1] * k + y];
                }
            }
            nll += log_z - gold;

            // Gradient: expectations − empirical counts.
            for t in 0..n {
                // Node marginals.
                for y in 0..k {
                    let p = (alpha[t * k + y] + beta[t * k + y] - log_z).exp();
                    let base = (t * k + y) * d;
                    for (g, &feat) in grad.iter_mut().zip(&seq.features[base..base + d]) {
                        *g += p * feat;
                    }
                }
                let gold_base = (t * k + seq.labels[t]) * d;
                for (g, &feat) in grad.iter_mut().zip(&seq.features[gold_base..gold_base + d]) {
                    *g -= feat;
                }
                // Edge marginals.
                if t > 0 {
                    for p in 0..k {
                        for q in 0..k {
                            let lp = alpha[(t - 1) * k + p]
                                + trans[p * k + q]
                                + scores[t * k + q]
                                + beta[t * k + q]
                                - log_z;
                            grad[d + p * k + q] += lp.exp();
                        }
                    }
                    grad[d + seq.labels[t - 1] * k + seq.labels[t]] -= 1.0;
                }
            }
        }

        // L2 prior.
        for (i, wi) in w.iter().enumerate() {
            nll += 0.5 * self.config.l2 * wi * wi;
            grad[i] += self.config.l2 * wi;
        }
        nll
    }
}

impl ChainCrf {
    /// Trains a CRF on labelled sequences.
    pub fn train(config: ChainCrfConfig, data: &[CrfSequence], lbfgs: &LbfgsParams) -> ChainCrf {
        let mut obj = CrfObjective { config, data };
        let x0 = vec![0.0; obj.dim()];
        let result = minimize(&mut obj, &x0, lbfgs);
        ChainCrf {
            config,
            weights: result.x,
        }
    }

    /// The configuration used at training time.
    pub fn config(&self) -> &ChainCrfConfig {
        &self.config
    }

    /// The learned parameter vector (unary weights then transitions).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Viterbi decoding of a feature sequence laid out `[t][label][feature]`.
    pub fn decode(&self, features: &[f64], len: usize) -> Vec<usize> {
        let k = self.config.num_labels;
        let d = self.config.feature_dim;
        assert_eq!(features.len(), len * k * d, "feature layout mismatch");
        if len == 0 {
            return Vec::new();
        }
        let w = &self.weights[..d];
        let trans = &self.weights[d..];
        let unary = |t: usize, y: usize| -> f64 {
            let base = (t * k + y) * d;
            features[base..base + d]
                .iter()
                .zip(w)
                .map(|(f, wi)| f * wi)
                .sum()
        };
        let mut delta: Vec<f64> = (0..k).map(|y| unary(0, y)).collect();
        let mut psi = vec![0u32; len * k];
        let mut next = vec![0.0f64; k];
        for t in 1..len {
            for y in 0..k {
                let mut best = f64::NEG_INFINITY;
                let mut arg = 0u32;
                for p in 0..k {
                    let v = delta[p] + trans[p * k + y];
                    if v > best {
                        best = v;
                        arg = p as u32;
                    }
                }
                next[y] = best + unary(t, y);
                psi[t * k + y] = arg;
            }
            std::mem::swap(&mut delta, &mut next);
        }
        let mut y = delta
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0);
        let mut path = vec![0usize; len];
        path[len - 1] = y;
        for t in (1..len).rev() {
            y = psi[t * k + y] as usize;
            path[t - 1] = y;
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ism_optim::gradcheck::max_gradient_error;

    /// Builds a toy dataset where feature 0 indicates label 0 and feature 1
    /// indicates label 1; labels come in runs.
    fn toy_sequence(labels: &[usize]) -> CrfSequence {
        let k = 2;
        let d = 2;
        let mut features = vec![0.0; labels.len() * k * d];
        for (t, &gold) in labels.iter().enumerate() {
            for y in 0..k {
                let base = (t * k + y) * d;
                // Indicator that the (noisy) observation matches label y.
                features[base + y] = if y == gold { 1.0 } else { 0.0 };
            }
        }
        CrfSequence {
            features,
            labels: labels.to_vec(),
        }
    }

    #[test]
    fn gradient_is_exact() {
        let data = vec![toy_sequence(&[0, 0, 1, 1, 0]), toy_sequence(&[1, 1, 1])];
        let mut obj = CrfObjective {
            config: ChainCrfConfig {
                num_labels: 2,
                feature_dim: 2,
                l2: 0.1,
            },
            data: &data,
        };
        let x: Vec<f64> = (0..obj.dim()).map(|i| 0.1 * (i as f64 - 2.5)).collect();
        let err = max_gradient_error(&mut obj, &x, 1e-5);
        assert!(err < 1e-6, "gradient error {err}");
    }

    #[test]
    fn training_learns_indicative_features() {
        let data: Vec<CrfSequence> = vec![
            toy_sequence(&[0, 0, 0, 1, 1]),
            toy_sequence(&[1, 1, 0, 0]),
            toy_sequence(&[0, 1, 1, 1]),
        ];
        let crf = ChainCrf::train(
            ChainCrfConfig {
                num_labels: 2,
                feature_dim: 2,
                l2: 0.01,
            },
            &data,
            &LbfgsParams::default(),
        );
        let test = toy_sequence(&[0, 1, 0, 1, 1]);
        let decoded = crf.decode(&test.features, 5);
        assert_eq!(decoded, vec![0, 1, 0, 1, 1]);
    }

    #[test]
    fn transition_weights_capture_run_structure() {
        // Labels always come in long runs → learned self-transitions should
        // dominate cross-transitions.
        let data: Vec<CrfSequence> = vec![
            toy_sequence(&[0, 0, 0, 0, 1, 1, 1, 1]),
            toy_sequence(&[1, 1, 1, 0, 0, 0]),
        ];
        let crf = ChainCrf::train(
            ChainCrfConfig {
                num_labels: 2,
                feature_dim: 2,
                l2: 0.05,
            },
            &data,
            &LbfgsParams::default(),
        );
        let d = 2;
        let trans = &crf.weights()[d..];
        assert!(trans[0] > trans[1], "self 0→0 should beat 0→1");
        assert!(trans[3] > trans[2], "self 1→1 should beat 1→0");
    }

    #[test]
    fn empty_sequence_decodes_empty() {
        let crf = ChainCrf {
            config: ChainCrfConfig {
                num_labels: 2,
                feature_dim: 2,
                l2: 0.0,
            },
            weights: vec![0.0; 2 + 4],
        };
        assert!(crf.decode(&[], 0).is_empty());
    }
}
