//! Deterministic scoped-thread worker pool.
//!
//! The batch annotation engine shards independent per-sequence jobs across
//! a fixed number of OS threads. Two properties drive the design:
//!
//! * **Determinism** — a job's output may depend only on its item index
//!   (callers derive per-item RNGs from `(base_seed, index)`), and results
//!   are returned in item order. Which worker ran which item is therefore
//!   unobservable, so output is byte-identical for any thread count.
//! * **Scratch reuse** — each worker owns one mutable state value built by
//!   an `init` closure and threaded through every job it runs
//!   ([`WorkerPool::run_with`]), so per-sweep buffers are allocated once
//!   per worker instead of once per sequence.
//!
//! Threads are scoped (`std::thread::scope`): jobs may borrow from the
//! caller's stack and no thread outlives a call.

#![deny(missing_docs)]

mod queue;

pub use queue::SubmissionQueue;

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// A fixed-size pool of scoped worker threads.
///
/// The pool itself holds no threads between calls; each [`WorkerPool::run`]
/// / [`WorkerPool::run_with`] spawns up to `threads` scoped workers that
/// pull item indices from a shared atomic counter and exit when the items
/// are exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// Creates a pool running jobs on `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// Creates a pool sized to the machine's available parallelism
    /// (falling back to 1 when it cannot be queried).
    pub fn with_available_parallelism() -> Self {
        let threads = thread::available_parallelism().map_or(1, |n| n.get());
        WorkerPool::new(threads)
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A view of this pool limited to at most `max_workers` workers
    /// (clamped to ≥ 1).
    ///
    /// The dispatch heuristic behind batched query fan-out: callers that
    /// can estimate how much work a call carries cap the worker count so
    /// that small calls run sequentially (`capped(1)` skips thread spawns
    /// entirely) instead of paying a fan-out that costs more than the work
    /// it distributes. Capping never changes results — only which workers
    /// run the items.
    pub fn capped(&self, max_workers: usize) -> WorkerPool {
        WorkerPool {
            threads: self.threads.min(max_workers.max(1)),
        }
    }

    /// Runs `job(index)` for every `index in 0..num_items`, returning the
    /// outputs in item order.
    pub fn run<T, F>(&self, num_items: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_with(num_items, || (), |(), i| job(i))
    }

    /// Runs `job(&mut state, index)` for every `index in 0..num_items`,
    /// returning the outputs in item order.
    ///
    /// Each worker builds one `state` via `init` when it starts and reuses
    /// it across every item it processes — the hook for per-worker scratch
    /// buffers. Items are claimed dynamically (atomic counter), so uneven
    /// per-item costs balance across workers; output order is still the
    /// item order.
    pub fn run_with<S, T, I, F>(&self, num_items: usize, init: I, job: F) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        let workers = self.threads.min(num_items);
        if workers <= 1 {
            let mut state = init();
            return (0..num_items).map(|i| job(&mut state, i)).collect();
        }

        // One slot per item; workers write disjoint slots, so each lock is
        // uncontended and held only for the duration of a move.
        let slots: Vec<Mutex<Option<T>>> = (0..num_items).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut state = init();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= num_items {
                            break;
                        }
                        *slots[i].lock() = Some(job(&mut state, i));
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("worker filled every claimed slot"))
            .collect()
    }

    /// Folds `0..num_items` into per-worker accumulators and reduces them
    /// into one.
    ///
    /// Each worker builds an accumulator via `init`, folds every item it
    /// claims into it with `fold(&mut acc, index)`, and the caller thread
    /// combines the per-worker accumulators with `reduce(&mut total, acc)`
    /// in worker-index order, starting from a fresh `init()` value.
    ///
    /// Items are claimed dynamically, so *which* items land in which
    /// accumulator varies run to run. The overall result is deterministic
    /// when the accumulation is order-insensitive — a commutative monoid
    /// such as per-key count sums — or when the caller tags folded entries
    /// with their item index and restores order inside `reduce` (or after
    /// it). The map-reduce query engine does the former; the parallel
    /// sharded-store builder does the latter.
    pub fn map_reduce<A, I, F, R>(&self, num_items: usize, init: I, fold: F, reduce: R) -> A
    where
        A: Send,
        I: Fn() -> A + Sync,
        F: Fn(&mut A, usize) + Sync,
        R: Fn(&mut A, A),
    {
        let workers = self.threads.min(num_items);
        if workers <= 1 {
            let mut acc = init();
            for i in 0..num_items {
                fold(&mut acc, i);
            }
            return acc;
        }

        // One slot per worker; each worker writes only its own slot.
        let slots: Vec<Mutex<Option<A>>> = (0..workers).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        thread::scope(|scope| {
            for slot in &slots {
                scope.spawn(|| {
                    let mut acc = init();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= num_items {
                            break;
                        }
                        fold(&mut acc, i);
                    }
                    *slot.lock() = Some(acc);
                });
            }
        });
        let mut total = init();
        for slot in slots {
            let acc = slot.into_inner().expect("worker stored its accumulator");
            reduce(&mut total, acc);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::WorkerPool;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(WorkerPool::new(0).threads(), 1);
    }

    #[test]
    fn capped_clamps_but_never_below_one() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.capped(2).threads(), 2);
        assert_eq!(pool.capped(8).threads(), 4);
        assert_eq!(pool.capped(0).threads(), 1);
        // Capping never changes results.
        let full = pool.run(17, |i| i * 31);
        assert_eq!(pool.capped(1).run(17, |i| i * 31), full);
    }

    #[test]
    fn results_are_in_item_order() {
        for threads in [1, 2, 4, 7] {
            let pool = WorkerPool::new(threads);
            let out = pool.run(23, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..57).map(|_| AtomicUsize::new(0)).collect();
        let pool = WorkerPool::new(4);
        pool.run(counts.len(), |i| counts[i].fetch_add(1, Ordering::Relaxed));
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn more_threads_than_items() {
        let pool = WorkerPool::new(16);
        assert_eq!(pool.run(3, |i| i + 1), vec![1, 2, 3]);
        assert_eq!(pool.run(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn worker_state_is_reused_within_a_worker() {
        // Single worker: the state counts how many jobs it has seen; every
        // job observes the same accumulating state instance.
        let pool = WorkerPool::new(1);
        let out = pool.run_with(
            5,
            || 0usize,
            |seen, _| {
                *seen += 1;
                *seen
            },
        );
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn output_is_thread_count_invariant() {
        // Jobs that depend only on their index produce identical output
        // regardless of worker count.
        let reference = WorkerPool::new(1).run(100, |i| (i as u64).wrapping_mul(0x9E37));
        for threads in [2, 3, 4, 8] {
            let out = WorkerPool::new(threads).run(100, |i| (i as u64).wrapping_mul(0x9E37));
            assert_eq!(out, reference, "threads = {threads}");
        }
    }

    #[test]
    fn map_reduce_sums_every_item_once() {
        for threads in [1, 2, 4, 7] {
            let pool = WorkerPool::new(threads);
            let total = pool.map_reduce(
                100,
                || 0u64,
                |acc, i| *acc += i as u64 + 1,
                |total, acc| *total += acc,
            );
            assert_eq!(total, 5050, "threads = {threads}");
        }
    }

    #[test]
    fn map_reduce_zero_items_returns_identity() {
        let pool = WorkerPool::new(4);
        let total = pool.map_reduce(0, || 41u64, |_, _| unreachable!(), |_, _| unreachable!());
        assert_eq!(total, 41);
    }

    #[test]
    fn map_reduce_order_insensitive_reduction_is_thread_invariant() {
        // Per-key count sums: the canonical commutative accumulation.
        let keys: Vec<usize> = (0..200).map(|i| i % 7).collect();
        let count = |threads: usize| {
            WorkerPool::new(threads).map_reduce(
                keys.len(),
                || vec![0usize; 7],
                |acc, i| acc[keys[i]] += 1,
                |total, acc| {
                    for (t, a) in total.iter_mut().zip(acc) {
                        *t += a;
                    }
                },
            )
        };
        let reference = count(1);
        for threads in [2, 3, 4, 8] {
            assert_eq!(count(threads), reference, "threads = {threads}");
        }
    }

    #[test]
    fn map_reduce_index_tagging_restores_order() {
        // Order-sensitive result made deterministic by carrying indices.
        let pool = WorkerPool::new(4);
        let mut pairs = pool.map_reduce(
            50,
            Vec::new,
            |acc: &mut Vec<(usize, usize)>, i| acc.push((i, i * 3)),
            |total, acc| total.extend(acc),
        );
        pairs.sort_unstable();
        let values: Vec<usize> = pairs.into_iter().map(|(_, v)| v).collect();
        assert_eq!(values, (0..50).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_may_borrow_from_the_caller() {
        let data: Vec<u64> = (0..40).collect();
        let pool = WorkerPool::new(3);
        let doubled = pool.run(data.len(), |i| data[i] * 2);
        assert_eq!(doubled[7], 14);
    }
}
