//! Semantics-oriented top-k queries over annotated m-semantics (§V-B4).
//!
//! Two engines over the same query semantics:
//!
//! * **Flat reference** — [`SemanticsStore`] plus [`tk_prq`] / [`tk_frpq`]:
//!   a sequential full scan, kept as the correctness oracle.
//! * **Sharded engine** — [`ShardedSemanticsStore`] plus
//!   [`tk_prq_sharded`] / [`tk_frpq_sharded`]: objects hashed into `S`
//!   shards ([`shard_of`]), each shard holding a region→visit posting index
//!   bucketed by time, query evaluation fanned out over an
//!   [`ism_runtime::WorkerPool`] as a map-reduce (per-shard partial counts
//!   merged by summation).
//!
//! The queries:
//!
//! * **TkPRQ** — the `k` regions from a query set with the most visits
//!   (a visit = a stay event overlapping the query time interval),
//! * **TkFRPQ** — the `k` region pairs most frequently visited by the same
//!   object.
//!
//! The sharded store is **live**: streaming producers
//! [`append`](ShardedSemanticsStore::append) entries into per-shard
//! pending segments and [`seal`](ShardedSemanticsStore::seal) them into
//! the posting indexes incrementally (only touched shards/regions rebuild,
//! never the whole store) — the storage layer behind the `ism-engine`
//! streaming ingestion API. `tests/incremental_oracle.rs` pins incremental
//! growth equal to a from-scratch build. Posting lists are delta+varint
//! **compressed** (see [`index`](crate) internals): starts are mapped to
//! order-preserving bits and delta-chained per time bucket, so candidate
//! scans decode sequentially without ever materialising raw postings.
//!
//! Three read paths share the sharded evaluation core:
//!
//! * **One-shot** — [`tk_prq_sharded`] / [`tk_frpq_sharded`], each a
//!   [`QueryBatch`] of one.
//! * **Batched** — [`QueryBatch`]: N queries share a *single* worker-pool
//!   fan-out over the shards, amortising dispatch overhead that made
//!   query-at-a-time fan-out slower than one thread on small stores. The
//!   batch also sizes the fan-out to the work
//!   (postings × queries), evaluating small workloads on the calling
//!   thread.
//! * **Standing** — [`StandingTkPrq`] / [`StandingTkFrpq`]: registered
//!   once, then folded forward incrementally from each seal's
//!   [`SealSummary`], byte-identical at every seal to a full re-run.
//!
//! ## Determinism contract
//!
//! Ties are broken by region id, per-shard partials merge through a
//! commutative sum, and objects are hashed whole into a single shard — so
//! sharded results are **byte-identical for any shard count and any thread
//! count**, and equal to the flat sequential reference. The property suite
//! (`tests/sharded_oracle.rs`) pins this over shard counts {1, 3, 8} ×
//! thread counts {1, 2, 4}.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod batch;
mod codec;
mod index;
mod persist;
mod standing;
mod store;
mod topk;

pub use batch::{QueryAnswer, QueryBatch};
pub use standing::{StandingTkFrpq, StandingTkPrq};
pub use store::{
    shard_of, SealSummary, SemanticsStore, ShardedSemanticsStore, ShardedStoreBuilder, StoreError,
    DEFAULT_SHARDS,
};
pub use topk::{tk_frpq, tk_frpq_sharded, tk_prq, tk_prq_sharded, QuerySet};

#[cfg(test)]
mod tests {
    use super::*;
    use ism_indoor::RegionId;
    use ism_mobility::{MobilityEvent, MobilitySemantics, TimePeriod};
    use ism_runtime::WorkerPool;
    use MobilityEvent::{Pass, Stay};

    fn ms(region: u32, start: f64, end: f64, event: MobilityEvent) -> MobilitySemantics {
        MobilitySemantics {
            region: RegionId(region),
            period: TimePeriod::new(start, end),
            event,
        }
    }

    fn sample_store() -> SemanticsStore {
        let mut store = SemanticsStore::new();
        // Object 1 stays in R0 and R1, passes R2.
        store.insert(
            1,
            vec![
                ms(0, 0.0, 100.0, Stay),
                ms(2, 100.0, 110.0, Pass),
                ms(1, 110.0, 200.0, Stay),
            ],
        );
        // Object 2 stays in R0 twice and R2 once.
        store.insert(
            2,
            vec![
                ms(0, 0.0, 50.0, Stay),
                ms(2, 60.0, 80.0, Stay),
                ms(0, 90.0, 120.0, Stay),
            ],
        );
        // Object 3 only passes.
        store.insert(3, vec![ms(0, 0.0, 300.0, Pass)]);
        store
    }

    #[test]
    fn prq_counts_stays_only() {
        let store = sample_store();
        let query: Vec<RegionId> = (0..3).map(RegionId).collect();
        let qt = TimePeriod::new(0.0, 300.0);
        let top = tk_prq(&store, &query, 3, qt);
        // R0: obj1 once + obj2 twice = 3 visits; R2: 1; R1: 1.
        assert_eq!(top[0], (RegionId(0), 3));
        assert_eq!(top.len(), 3);
        assert!(top[1..].iter().all(|&(_, c)| c == 1));
    }

    #[test]
    fn prq_respects_time_interval() {
        let store = sample_store();
        let query: Vec<RegionId> = (0..3).map(RegionId).collect();
        // Only the tail: object 1's R1 stay and object 2's second R0 stay.
        let top = tk_prq(&store, &query, 3, TimePeriod::new(115.0, 300.0));
        assert!(top.contains(&(RegionId(1), 1)));
        assert!(top.contains(&(RegionId(0), 1)));
        assert!(!top.iter().any(|&(r, _)| r == RegionId(2)));
    }

    #[test]
    fn prq_respects_query_set() {
        let store = sample_store();
        let top = tk_prq(
            &store,
            &[RegionId(1), RegionId(2)],
            5,
            TimePeriod::new(0.0, 300.0),
        );
        assert!(!top.iter().any(|&(r, _)| r == RegionId(0)));
    }

    #[test]
    fn frpq_counts_objects_per_pair() {
        let store = sample_store();
        let query: Vec<RegionId> = (0..3).map(RegionId).collect();
        let top = tk_frpq(&store, &query, 5, TimePeriod::new(0.0, 300.0));
        // Object 1 visited {R0, R1}; object 2 visited {R0, R2}.
        assert!(top.contains(&((RegionId(0), RegionId(1)), 1)));
        assert!(top.contains(&((RegionId(0), RegionId(2)), 1)));
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn frpq_counts_object_once_per_pair() {
        let mut store = SemanticsStore::new();
        // One object visits R0 and R1 repeatedly: the pair still counts 1.
        store.insert(
            7,
            vec![
                ms(0, 0.0, 10.0, Stay),
                ms(1, 20.0, 30.0, Stay),
                ms(0, 40.0, 50.0, Stay),
                ms(1, 60.0, 70.0, Stay),
            ],
        );
        let query = vec![RegionId(0), RegionId(1)];
        let top = tk_frpq(&store, &query, 5, TimePeriod::new(0.0, 100.0));
        assert_eq!(top, vec![((RegionId(0), RegionId(1)), 1)]);
    }

    #[test]
    fn frpq_does_not_double_count_reinserted_objects() {
        // Regression: two `insert` calls for one object id used to produce
        // two store entries, counting the object twice per pair.
        let mut store = SemanticsStore::new();
        store.insert(7, vec![ms(0, 0.0, 10.0, Stay)]);
        store.insert(7, vec![ms(1, 20.0, 30.0, Stay)]);
        let query = vec![RegionId(0), RegionId(1)];
        let top = tk_frpq(&store, &query, 5, TimePeriod::new(0.0, 100.0));
        assert_eq!(top, vec![((RegionId(0), RegionId(1)), 1)]);
    }

    #[test]
    fn empty_store_returns_empty() {
        let store = SemanticsStore::new();
        assert!(store.is_empty());
        let query = vec![RegionId(0)];
        assert!(tk_prq(&store, &query, 3, TimePeriod::new(0.0, 1.0)).is_empty());
        assert!(tk_frpq(&store, &query, 3, TimePeriod::new(0.0, 1.0)).is_empty());
        let sharded = ShardedSemanticsStore::from_store(&store, 4);
        assert!(sharded.is_empty());
        let pool = WorkerPool::new(2);
        assert!(tk_prq_sharded(&sharded, &query, 3, TimePeriod::new(0.0, 1.0), &pool).is_empty());
        assert!(tk_frpq_sharded(&sharded, &query, 3, TimePeriod::new(0.0, 1.0), &pool).is_empty());
    }

    #[test]
    fn deterministic_tie_breaking() {
        let store = sample_store();
        let query: Vec<RegionId> = (0..3).map(RegionId).collect();
        let a = tk_prq(&store, &query, 3, TimePeriod::new(0.0, 300.0));
        let b = tk_prq(&store, &query, 3, TimePeriod::new(0.0, 300.0));
        assert_eq!(a, b);
        // R1 and R2 both have one visit: lower id first.
        assert_eq!(a[1].0, RegionId(1));
        assert_eq!(a[2].0, RegionId(2));
    }

    #[test]
    fn sharded_matches_flat_on_sample_store() {
        let store = sample_store();
        let query: Vec<RegionId> = (0..3).map(RegionId).collect();
        for qt in [
            TimePeriod::new(0.0, 300.0),
            TimePeriod::new(115.0, 300.0),
            TimePeriod::new(400.0, 500.0),
        ] {
            let flat_prq = tk_prq(&store, &query, 3, qt);
            let flat_frpq = tk_frpq(&store, &query, 3, qt);
            for shards in [1, 2, 5] {
                let sharded = ShardedSemanticsStore::from_store(&store, shards);
                for threads in [1, 2, 4] {
                    let pool = WorkerPool::new(threads);
                    assert_eq!(tk_prq_sharded(&sharded, &query, 3, qt, &pool), flat_prq);
                    assert_eq!(tk_frpq_sharded(&sharded, &query, 3, qt, &pool), flat_frpq);
                }
            }
        }
    }
}
