//! Indoor mobility data: core types, a random-waypoint simulator, a
//! positioning-error model, and p-sequence preprocessing.
//!
//! The C2MN paper evaluates on (a) a proprietary Wi-Fi positioning dataset
//! from a Hangzhou mall and (b) synthetic data produced by the (unreleased)
//! Vita simulator [11]. This crate supplies both:
//!
//! * [`Simulator`] — random-waypoint movement over an
//!   [`ism_indoor::IndoorSpace`]: objects repeatedly stay at a destination
//!   region (1 s – 30 min) and walk to the next destination along planned
//!   indoor routes at ≤ 1.7 m/s, with per-second ground-truth positions and
//!   (region, event) labels;
//! * [`PositioningSampler`] — converts ground truth into positioning
//!   sequences with a maximum reporting period `T`, a positioning error
//!   `μ`, false floor values and location outliers (the paper's synthetic
//!   noise model), plus a Wi-Fi-like profile matching the real dataset's
//!   statistics (2–25 m error, ≈1/15 Hz);
//! * [`preprocess`] — the paper's η-gap splitting and ψ-duration filtering;
//! * [`merge_labels`] — the *merge* half of label-and-merge, turning
//!   record-level (region, event) labels into m-semantics;
//! * [`Dataset`] and [`DatasetStats`] — labelled corpora and the Table III /
//!   Table V statistics.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod dataset;
mod merge;
mod observe;
mod persist;
mod preprocess;
mod simulate;
mod types;

pub use dataset::{Dataset, DatasetStats};
pub use merge::merge_labels;
pub use observe::{PositioningConfig, PositioningSampler};
pub use persist::{decode_semantics_run, encode_semantics_run};
pub use preprocess::{preprocess, split_by_gap, PreprocessConfig};
pub use simulate::{SimulationConfig, Simulator, Trajectory};
pub use types::{
    GroundTruthPoint, LabeledRecord, LabeledSequence, MobilityEvent, MobilitySemantics,
    PositioningRecord, TimePeriod,
};
