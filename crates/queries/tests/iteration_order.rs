//! Regression tests pinning store iteration order.
//!
//! The determinism lint (`ism-analyzer`, rule `hash-iter`) guards against
//! HashMap iteration order leaking into ordered output. These tests pin
//! the complementary runtime contract: store iteration is a pure function
//! of insertion order — identical across repeated builds, across seal
//! thread counts, and stable for the flat and sharded stores alike.

use ism_mobility::{MobilityEvent, MobilitySemantics, TimePeriod};
use ism_queries::{SemanticsStore, ShardedSemanticsStore};
use ism_runtime::WorkerPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A short random timeline for `object`, deterministic in `rng`.
fn timeline(rng: &mut StdRng) -> Vec<MobilitySemantics> {
    let n = rng.random_range(1..4usize);
    (0..n)
        .map(|_| {
            let start = rng.random_range(0.0..900.0);
            MobilitySemantics {
                region: ism_indoor::RegionId(rng.random_range(0..32)),
                period: TimePeriod::new(start, start + rng.random_range(1.0..50.0)),
                event: if rng.random_bool(0.7) {
                    MobilityEvent::Stay
                } else {
                    MobilityEvent::Pass
                },
            }
        })
        .collect()
}

/// The insertion stream: object ids deliberately out of numeric order and
/// with duplicates, so any "helpful" reordering would show.
fn insertions(seed: u64) -> Vec<(u64, Vec<MobilitySemantics>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let ids = [7u64, 3, 11, 3, 40, 1, 7, 22, 5, 11, 90, 2];
    ids.iter().map(|&id| (id, timeline(&mut rng))).collect()
}

fn flat_store(seed: u64) -> SemanticsStore {
    let mut store = SemanticsStore::new();
    for (id, sem) in insertions(seed) {
        store.insert(id, sem);
    }
    store
}

fn sharded_store(seed: u64, shards: usize, threads: usize) -> ShardedSemanticsStore {
    let pool = WorkerPool::new(threads);
    let mut store = ShardedSemanticsStore::new(shards);
    for (id, sem) in insertions(seed) {
        store.append(id, sem);
    }
    store.seal_with(&pool);
    store
}

/// Materialises an iteration as owned pairs so runs can be compared.
fn collected<'a, I>(iter: I) -> Vec<(u64, Vec<MobilitySemantics>)>
where
    I: Iterator<Item = (u64, &'a [MobilitySemantics])>,
{
    iter.map(|(id, sem)| (id, sem.to_vec())).collect()
}

#[test]
fn flat_store_iterates_in_first_insertion_order() {
    let store = flat_store(9);
    let order: Vec<u64> = store.iter().map(|(id, _)| id).collect();
    // First occurrence of each id in the insertion stream, in stream order.
    assert_eq!(order, vec![7, 3, 11, 40, 1, 22, 5, 90, 2]);
}

#[test]
fn flat_store_iteration_is_identical_across_builds() {
    let a = collected(flat_store(42).iter());
    let b = collected(flat_store(42).iter());
    assert_eq!(a, b);
}

#[test]
fn sharded_store_iteration_is_identical_across_builds_and_threads() {
    let reference = collected(sharded_store(42, 4, 1).iter());
    assert!(!reference.is_empty());
    for threads in [1usize, 2, 4] {
        for _ in 0..3 {
            let run = collected(sharded_store(42, 4, threads).iter());
            assert_eq!(
                run, reference,
                "iteration order drifted at {threads} threads"
            );
        }
    }
}

#[test]
fn shard_iteration_concatenates_to_full_iteration() {
    let store = sharded_store(7, 3, 2);
    let full = collected(store.iter());
    let mut by_shard = Vec::new();
    for s in 0..store.num_shards() {
        by_shard.extend(collected(store.iter_shard(s)));
    }
    assert_eq!(by_shard, full);
}

#[test]
fn sealing_in_chunks_matches_sealing_once() {
    let pool = WorkerPool::new(2);
    let mut once = ShardedSemanticsStore::new(4);
    let mut chunked = ShardedSemanticsStore::new(4);
    let stream = insertions(13);
    for (id, sem) in &stream {
        once.append(*id, sem.clone());
    }
    once.seal_with(&pool);
    for (i, (id, sem)) in stream.iter().enumerate() {
        chunked.append(*id, sem.clone());
        if i % 3 == 2 {
            chunked.seal_with(&pool);
        }
    }
    chunked.seal_with(&pool);
    assert_eq!(collected(chunked.iter()), collected(once.iter()));
}
