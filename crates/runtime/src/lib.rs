//! Deterministic **persistent** worker runtime.
//!
//! Every parallel path of the reproduction — batch annotation, training,
//! streaming ingest, sharded query fan-out — runs on one [`WorkerPool`]:
//! a fixed set of long-lived OS threads created once at pool construction
//! and parked on per-worker condvars between tasks. Calls inject work into
//! per-worker queues; **no path spawns threads per call**.
//!
//! Two properties drive the design:
//!
//! * **Determinism** — a job's output may depend only on its item index
//!   (callers derive per-item RNGs from `(base_seed, index)`), and results
//!   are returned in item order. Which worker ran which item is therefore
//!   unobservable, so output is byte-identical for any thread count.
//! * **Scratch reuse** — each participant of a call owns one mutable state
//!   value built by an `init` closure and threaded through every job it
//!   runs ([`WorkerPool::run_with`]), so per-sweep buffers are allocated
//!   once per participant instead of once per sequence.
//!
//! Jobs may still borrow from the caller's stack even though the threads
//! outlive the call: each blocking call erases its body's lifetime, hands
//! it to the workers, and blocks on a completion latch until every
//! participant has finished — a bounded-lifetime job handoff in place of
//! the scoped-thread join the pool used before it became persistent.
//! Fire-and-forget work (pipelined ingest) goes through
//! [`WorkerPool::try_spawn`] instead, and [`PoolStats`] exposes the
//! lifetime counters (dispatch modes, claims, idle wakeups, threads
//! created) that make the steady state observable.

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod pool;
mod queue;
mod stats;

pub use pool::{AsyncTask, WorkerPool};
pub use queue::SubmissionQueue;
pub use stats::PoolStats;
