//! Cross-crate integration tests: the full pipeline from venue generation
//! through simulation, training, annotation, and querying.

use indoor_semantics::baselines::{HmmDcConfig, SapConfig, SmotConfig};
use indoor_semantics::eval::{AccuracyAccumulator, PAPER_LAMBDA};
use indoor_semantics::mobility::{merge_labels, TimePeriod};
use indoor_semantics::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pipeline(seed: u64) -> (IndoorSpace, Dataset) {
    let mut rng = StdRng::seed_from_u64(seed);
    let venue = BuildingGenerator::small_office()
        .generate(&mut rng)
        .unwrap();
    let dataset = Dataset::generate(
        "it",
        &venue,
        SimulationConfig::quick(),
        PositioningConfig::synthetic(8.0, 1.5),
        None,
        10,
        &mut rng,
    );
    (venue, dataset)
}

#[test]
fn c2mn_beats_decoupled_variants_on_perfect_accuracy() {
    let (venue, dataset) = pipeline(1);
    let mut rng = StdRng::seed_from_u64(2);
    let (train, test) = dataset.split(0.7, &mut rng);

    let full = C2mn::train(&venue, &train, &C2mnConfig::quick_test(), &mut rng).unwrap();
    let cmn = C2mn::train(
        &venue,
        &train,
        &C2mnConfig::quick_test().with_structure(ModelStructure::cmn()),
        &mut rng,
    )
    .unwrap();

    let measure = |model: &C2mn, seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut acc = AccuracyAccumulator::new();
        for seq in &test {
            let records: Vec<_> = seq.positioning().collect();
            acc.add(&model.label(&records, &mut rng), seq.truth_labels());
        }
        acc.finish()
    };
    let full_acc = measure(&full, 3);
    let cmn_acc = measure(&cmn, 3);
    // Coupled inference should help (or at least not catastrophically
    // hurt) perfect accuracy relative to the decoupled CMN.
    assert!(
        full_acc.perfect + 0.1 >= cmn_acc.perfect,
        "full {} vs cmn {}",
        full_acc.perfect,
        cmn_acc.perfect
    );
    assert!(full_acc.combined(PAPER_LAMBDA) > 0.5);
}

#[test]
fn every_method_produces_aligned_labels() {
    let (venue, dataset) = pipeline(4);
    let mut rng = StdRng::seed_from_u64(5);
    let (train, test) = dataset.split(0.7, &mut rng);

    let smot = Smot::new(&venue, SmotConfig::default());
    let hmm_dc = HmmDc::train(&venue, &train, HmmDcConfig::default());
    let sapdv = SapDv::new(&venue, SapConfig::default());
    let sapda = SapDa::new(&venue, SapConfig::default());
    let c2mn = C2mn::train(&venue, &train, &C2mnConfig::quick_test(), &mut rng).unwrap();

    for seq in &test {
        let records: Vec<_> = seq.positioning().collect();
        for labels in [
            smot.label(&records),
            hmm_dc.label(&records),
            sapdv.label(&records),
            sapda.label(&records),
            c2mn.label(&records, &mut rng),
        ] {
            assert_eq!(labels.len(), records.len());
            for (region, _) in &labels {
                assert!(region.index() < venue.regions().len());
            }
        }
    }
}

#[test]
fn annotation_round_trip_preserves_record_coverage() {
    let (venue, dataset) = pipeline(6);
    let mut rng = StdRng::seed_from_u64(7);
    let model = C2mn::train(
        &venue,
        &dataset.sequences,
        &C2mnConfig::quick_test(),
        &mut rng,
    )
    .unwrap();
    for seq in dataset.sequences.iter().take(3) {
        let records: Vec<_> = seq.positioning().collect();
        let ms = model.annotate(&records, &mut rng);
        // Every record timestamp is covered by exactly one m-semantics.
        for r in &records {
            let covering = ms.iter().filter(|m| m.period.contains(r.t)).count();
            assert_eq!(covering, 1, "record at t={} covered {covering}x", r.t);
        }
    }
}

#[test]
fn queries_on_ground_truth_are_self_consistent() {
    let (venue, dataset) = pipeline(8);
    let mut store = SemanticsStore::new();
    for seq in &dataset.sequences {
        let times: Vec<f64> = seq.records.iter().map(|r| r.record.t).collect();
        let labels: Vec<_> = seq.truth_labels().collect();
        store.insert(seq.object_id, merge_labels(&times, &labels));
    }
    let shops: Vec<_> = venue
        .regions()
        .iter()
        .filter(|r| r.is_destination())
        .map(|r| r.id)
        .collect();
    let qt = TimePeriod::new(0.0, SimulationConfig::quick().duration);
    let prq = tk_prq(&store, &shops, 5, qt);
    // Visits exist and are ordered by count.
    assert!(!prq.is_empty());
    for w in prq.windows(2) {
        assert!(w[0].1 >= w[1].1);
    }
    // Region pairs are consistent with individual visit counts.
    let frpq = tk_frpq(&store, &shops, 5, qt);
    for ((a, b), support) in &frpq {
        assert!(a < b);
        let va = prq.iter().find(|(r, _)| r == a).map(|x| x.1);
        if let Some(va) = va {
            assert!(*support <= va, "pair support exceeds visit count");
        }
    }
    // The sharded parallel engine returns exactly what the flat scan did,
    // for any shard/thread combination.
    for shards in [1, 4] {
        let sharded = ShardedSemanticsStore::from_store(&store, shards);
        for threads in [1, 3] {
            let pool = WorkerPool::new(threads);
            assert_eq!(tk_prq_sharded(&sharded, &shops, 5, qt, &pool), prq);
            assert_eq!(tk_frpq_sharded(&sharded, &shops, 5, qt, &pool), frpq);
        }
    }
}

#[test]
fn training_is_deterministic_given_seed() {
    let (venue, dataset) = pipeline(9);
    let a = C2mn::train(
        &venue,
        &dataset.sequences,
        &C2mnConfig::quick_test(),
        &mut StdRng::seed_from_u64(10),
    )
    .unwrap();
    let b = C2mn::train(
        &venue,
        &dataset.sequences,
        &C2mnConfig::quick_test(),
        &mut StdRng::seed_from_u64(10),
    )
    .unwrap();
    assert_eq!(a.weights().0, b.weights().0);
}

#[test]
fn multi_floor_pipeline_works() {
    let mut rng = StdRng::seed_from_u64(11);
    let venue = BuildingGenerator::mall().generate(&mut rng).unwrap();
    let dataset = Dataset::generate(
        "mall-it",
        &venue,
        SimulationConfig::quick(),
        PositioningConfig::wifi_mall(),
        None,
        6,
        &mut rng,
    );
    assert!(!dataset.sequences.is_empty());
    // Floors beyond 0 are visited.
    let floors: std::collections::HashSet<u16> = dataset
        .sequences
        .iter()
        .flat_map(|s| s.records.iter().map(|r| r.record.location.floor))
        .collect();
    assert!(!floors.is_empty());
    let model = C2mn::train(
        &venue,
        &dataset.sequences,
        &C2mnConfig::quick_test(),
        &mut rng,
    )
    .unwrap();
    let records: Vec<_> = dataset.sequences[0].positioning().collect();
    assert_eq!(model.label(&records, &mut rng).len(), records.len());
}
