//! Core mobility data types mirroring the paper's definitions.

use ism_indoor::{IndoorPoint, RegionId};
use serde::{Deserialize, Serialize};

/// An indoor mobility event (Definition 2): the paper's two generic
/// patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MobilityEvent {
    /// The object remained in a semantic region for a purpose.
    Stay,
    /// The object merely passed through a region.
    Pass,
}

impl MobilityEvent {
    /// Dense index (Stay = 0, Pass = 1) for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            MobilityEvent::Stay => 0,
            MobilityEvent::Pass => 1,
        }
    }

    /// Both events, in index order.
    pub const ALL: [MobilityEvent; 2] = [MobilityEvent::Stay, MobilityEvent::Pass];

    /// The indicator `I(e)` of the paper: 1 for pass, 0 for stay.
    #[inline]
    pub fn pass_indicator(self) -> f64 {
        match self {
            MobilityEvent::Stay => 0.0,
            MobilityEvent::Pass => 1.0,
        }
    }
}

/// A closed time period `[start, end]` in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimePeriod {
    /// Start timestamp (seconds).
    pub start: f64,
    /// End timestamp (seconds), `end ≥ start`.
    pub end: f64,
}

impl TimePeriod {
    /// Creates a period; `end` must not precede `start`.
    #[inline]
    pub fn new(start: f64, end: f64) -> Self {
        debug_assert!(end >= start, "time period end before start");
        TimePeriod { start, end }
    }

    /// Duration in seconds.
    #[inline]
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// Whether `t` lies inside the period.
    #[inline]
    pub fn contains(&self, t: f64) -> bool {
        t >= self.start && t <= self.end
    }

    /// Whether the two periods overlap (shared endpoints count).
    #[inline]
    pub fn overlaps(&self, other: &TimePeriod) -> bool {
        self.start <= other.end && other.start <= self.end
    }
}

/// A raw positioning record θ(l, t): an estimated indoor location and a
/// timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PositioningRecord {
    /// Estimated location (x, y, floor).
    pub location: IndoorPoint,
    /// Timestamp in seconds.
    pub t: f64,
}

impl PositioningRecord {
    /// Creates a record.
    #[inline]
    pub const fn new(location: IndoorPoint, t: f64) -> Self {
        PositioningRecord { location, t }
    }
}

/// One second of simulated ground truth: the true location plus the true
/// (region, event) labels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroundTruthPoint {
    /// True location.
    pub location: IndoorPoint,
    /// Timestamp in seconds.
    pub t: f64,
    /// True semantic region at this instant.
    pub region: RegionId,
    /// True mobility event at this instant.
    pub event: MobilityEvent,
}

/// A positioning record together with its ground-truth labels — the unit of
/// supervised training and of labeling-accuracy evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LabeledRecord {
    /// The (noisy) observed record.
    pub record: PositioningRecord,
    /// Ground-truth region label.
    pub region: RegionId,
    /// Ground-truth event label.
    pub event: MobilityEvent,
}

/// A labelled positioning sequence of one object over one contiguous visit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledSequence {
    /// Object (device) identifier.
    pub object_id: u64,
    /// Time-ordered labelled records.
    pub records: Vec<LabeledRecord>,
}

impl LabeledSequence {
    /// Total duration covered by the sequence, in seconds.
    pub fn duration(&self) -> f64 {
        match (self.records.first(), self.records.last()) {
            (Some(a), Some(b)) => b.record.t - a.record.t,
            _ => 0.0,
        }
    }

    /// The raw positioning records (observation side only).
    pub fn positioning(&self) -> impl Iterator<Item = PositioningRecord> + '_ {
        self.records.iter().map(|r| r.record)
    }

    /// Ground-truth (region, event) label pairs, aligned with `records`.
    pub fn truth_labels(&self) -> impl Iterator<Item = (RegionId, MobilityEvent)> + '_ {
        self.records.iter().map(|r| (r.region, r.event))
    }
}

/// One mobility semantics triple `ms = (r, τ, e)` (Definition 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MobilitySemantics {
    /// Semantic region.
    pub region: RegionId,
    /// Time period of the event.
    pub period: TimePeriod,
    /// Mobility event.
    pub event: MobilityEvent,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ism_geometry::Point2;

    #[test]
    fn event_indices() {
        assert_eq!(MobilityEvent::Stay.index(), 0);
        assert_eq!(MobilityEvent::Pass.index(), 1);
        assert_eq!(MobilityEvent::Stay.pass_indicator(), 0.0);
        assert_eq!(MobilityEvent::Pass.pass_indicator(), 1.0);
    }

    #[test]
    fn period_operations() {
        let p = TimePeriod::new(10.0, 20.0);
        assert_eq!(p.duration(), 10.0);
        assert!(p.contains(10.0) && p.contains(20.0) && p.contains(15.0));
        assert!(!p.contains(21.0));
        assert!(p.overlaps(&TimePeriod::new(20.0, 30.0)));
        assert!(p.overlaps(&TimePeriod::new(0.0, 10.0)));
        assert!(!p.overlaps(&TimePeriod::new(20.5, 30.0)));
    }

    #[test]
    fn sequence_duration() {
        let mk = |t: f64| LabeledRecord {
            record: PositioningRecord::new(IndoorPoint::new(0, Point2::new(0.0, 0.0)), t),
            region: RegionId(0),
            event: MobilityEvent::Stay,
        };
        let seq = LabeledSequence {
            object_id: 1,
            records: vec![mk(5.0), mk(12.0), mk(30.0)],
        };
        assert_eq!(seq.duration(), 25.0);
        assert_eq!(seq.positioning().count(), 3);
        let empty = LabeledSequence {
            object_id: 2,
            records: vec![],
        };
        assert_eq!(empty.duration(), 0.0);
    }
}
