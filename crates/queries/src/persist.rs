//! `ism-codec` impls for the sharded semantics store.
//!
//! A store persists as its logical content: for every shard, the sealed
//! `(object, m-semantics)` entries in shard order, then the pending
//! (appended but unsealed) entries in append order. M-semantics runs go
//! through the delta+varint codec in `ism-mobility` — the same
//! ordered-bits/ZigZag conventions as the in-memory posting index.
//!
//! The posting index itself is **not** serialized: [`Shard::build`]
//! reconstructs it deterministically from the sealed objects on decode,
//! exactly the way the `incremental_oracle` suite pins a grown store equal
//! to a rebuilt one. That keeps the artifact small and means a decoded
//! store answers TkPRQ/TkFRPQ byte-identically to the live one it was
//! encoded from (pinned by the `persist_roundtrip` suite).

use ism_codec::{write_varint, CodecError, Decode, Encode, Reader};
use ism_mobility::{decode_semantics_run, encode_semantics_run, MobilitySemantics};

use crate::store::{Shard, ShardedSemanticsStore};

fn encode_entries(out: &mut Vec<u8>, entries: &[(u64, Vec<MobilitySemantics>)]) {
    write_varint(out, entries.len() as u64);
    for (object_id, semantics) in entries {
        write_varint(out, *object_id);
        encode_semantics_run(out, semantics);
    }
}

fn decode_entries(r: &mut Reader<'_>) -> Result<Vec<(u64, Vec<MobilitySemantics>)>, CodecError> {
    // Each entry is at least 2 bytes (object id varint + run count varint).
    let count = r.count_prefix(2)?;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let object_id = r.varint()?;
        let semantics = decode_semantics_run(r)?;
        entries.push((object_id, semantics));
    }
    Ok(entries)
}

impl Encode for ShardedSemanticsStore {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, self.shards.len() as u64);
        for shard in &self.shards {
            encode_entries(out, &shard.objects);
            encode_entries(out, &shard.pending);
        }
    }
}

impl Decode for ShardedSemanticsStore {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        // An empty shard still occupies 2 bytes (two zero counts).
        let num_shards = r.count_prefix(2)?;
        if num_shards == 0 {
            return Err(CodecError::InvalidValue {
                what: "store with zero shards",
            });
        }
        let mut shards = Vec::with_capacity(num_shards);
        for _ in 0..num_shards {
            let objects = decode_entries(r)?;
            let mut shard = Shard::build(objects);
            shard.pending = decode_entries(r)?;
            shards.push(shard);
        }
        Ok(ShardedSemanticsStore { shards })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ShardedStoreBuilder;
    use ism_indoor::RegionId;
    use ism_mobility::{MobilityEvent, TimePeriod};

    fn ms(region: u32, start: f64, end: f64) -> MobilitySemantics {
        MobilitySemantics {
            region: RegionId(region),
            period: TimePeriod::new(start, end),
            event: if region.is_multiple_of(2) {
                MobilityEvent::Stay
            } else {
                MobilityEvent::Pass
            },
        }
    }

    fn sample_store() -> ShardedSemanticsStore {
        let mut builder = ShardedStoreBuilder::new(4);
        for i in 0..60u64 {
            builder.insert(
                i % 13,
                vec![ms(i as u32 % 6, i as f64 * 2.0, i as f64 * 2.0 + 1.5)],
            );
        }
        let mut store = builder.build();
        // Leave some entries pending so both segments round-trip.
        store.append(100, vec![ms(2, 500.0, 510.0)]);
        store.append(101, vec![ms(3, 520.0, 530.0)]);
        store
    }

    fn contents(store: &ShardedSemanticsStore) -> Vec<Vec<(u64, Vec<MobilitySemantics>)>> {
        (0..store.num_shards())
            .map(|s| {
                store
                    .iter_shard(s)
                    .map(|(id, sem)| (id, sem.to_vec()))
                    .chain(
                        store
                            .pending_of_shard(s)
                            .map(|(id, sem)| (id, sem.to_vec())),
                    )
                    .collect()
            })
            .collect()
    }

    #[test]
    fn store_round_trips_sealed_and_pending() {
        let store = sample_store();
        let decoded = ShardedSemanticsStore::from_bytes(&store.to_bytes()).unwrap();
        assert_eq!(decoded.num_shards(), store.num_shards());
        assert_eq!(decoded.len(), store.len());
        assert_eq!(decoded.num_pending(), store.num_pending());
        assert_eq!(decoded.num_postings(), store.num_postings());
        assert_eq!(contents(&decoded), contents(&store));
        // Deterministic: re-encoding the decoded store is byte-identical.
        assert_eq!(decoded.to_bytes(), store.to_bytes());
    }

    #[test]
    fn decoded_store_seals_like_the_original() {
        let mut live = sample_store();
        let mut decoded = ShardedSemanticsStore::from_bytes(&live.to_bytes()).unwrap();
        let live_summary = live.seal_summarized();
        let decoded_summary = decoded.seal_summarized();
        assert_eq!(decoded_summary, live_summary);
        assert_eq!(contents(&decoded), contents(&live));
    }

    #[test]
    fn zero_shard_store_is_rejected() {
        let mut bytes = Vec::new();
        write_varint(&mut bytes, 0);
        assert!(matches!(
            ShardedSemanticsStore::from_bytes(&bytes),
            Err(CodecError::InvalidValue { .. })
        ));
    }

    #[test]
    fn corrupt_shard_count_fails_before_allocating() {
        let mut bytes = Vec::new();
        write_varint(&mut bytes, u64::MAX / 16);
        assert!(ShardedSemanticsStore::from_bytes(&bytes).is_err());
    }
}
