//! Circles and exact circle–polygon intersection areas.
//!
//! The spatial matching feature `fsm` of the paper (Eq. 3) computes
//! `area(UR(l, v) ∩ region) / area(UR)` where the uncertainty region `UR`
//! is a disk. Because indoor partitions are axis-aligned rectangles, the
//! required primitive is the exact area of a disk–rectangle intersection,
//! computed here with a Green's-theorem walk over the rectangle boundary
//! (triangle contributions for chords inside the circle, sector
//! contributions where the boundary is the circular arc).

use crate::{Point2, Rect};
use serde::{Deserialize, Serialize};

/// A circle given by center and radius.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Circle {
    /// Center of the circle.
    pub center: Point2,
    /// Radius (non-negative).
    pub radius: f64,
}

impl Circle {
    /// Creates a circle; the radius must be non-negative.
    #[inline]
    pub fn new(center: Point2, radius: f64) -> Self {
        debug_assert!(radius >= 0.0, "circle radius must be non-negative");
        Circle { center, radius }
    }

    /// Area of the disk.
    #[inline]
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// Whether the point lies inside or on the circle.
    #[inline]
    pub fn contains(&self, p: Point2) -> bool {
        self.center.distance_sq(p) <= self.radius * self.radius
    }

    /// Tight axis-aligned bounding box of the disk.
    #[inline]
    pub fn bounding_rect(&self) -> Rect {
        Rect::new(
            Point2::new(self.center.x - self.radius, self.center.y - self.radius),
            Point2::new(self.center.x + self.radius, self.center.y + self.radius),
        )
    }
}

/// Signed area contribution of the directed chord/arc from `a` to `b`
/// (both relative to a circle centered at the origin with radius `r`).
///
/// Implements the classic circle–polygon clipping step: the directed edge is
/// split at its circle crossings; sub-segments inside the disk contribute
/// triangle (shoelace) area, portions outside contribute the circular sector
/// swept between the corresponding angles (short way, signed).
fn edge_contribution(a: Point2, b: Point2, r: f64) -> f64 {
    #[inline]
    fn tri(a: Point2, b: Point2) -> f64 {
        0.5 * a.cross(b)
    }
    #[inline]
    fn sector(a: Point2, b: Point2, r: f64) -> f64 {
        // Signed short-way angle between the two direction vectors.
        let theta = a.cross(b).atan2(a.dot(b));
        0.5 * r * r * theta
    }

    let r_sq = r * r;
    let a_in = a.norm_sq() <= r_sq;
    let b_in = b.norm_sq() <= r_sq;

    // Both endpoints inside: plain chord.
    if a_in && b_in {
        return tri(a, b);
    }

    // Solve |a + t (b-a)|² = r² for t ∈ [0, 1].
    let d = b - a;
    let qa = d.norm_sq();
    if qa <= f64::EPSILON {
        // Degenerate edge.
        return if a_in { tri(a, b) } else { sector(a, b, r) };
    }
    let qb = 2.0 * a.dot(d);
    let qc = a.norm_sq() - r_sq;
    let disc = qb * qb - 4.0 * qa * qc;

    if !a_in && !b_in {
        if disc <= 0.0 {
            // Line misses the circle entirely: pure arc.
            return sector(a, b, r);
        }
        let sq = disc.sqrt();
        let t0 = (-qb - sq) / (2.0 * qa);
        let t1 = (-qb + sq) / (2.0 * qa);
        if t1 <= 0.0 || t0 >= 1.0 || t0 >= t1 {
            // Crossings outside the segment: pure arc.
            return sector(a, b, r);
        }
        let p0 = a + d * t0.max(0.0);
        let p1 = a + d * t1.min(1.0);
        return sector(a, p0, r) + tri(p0, p1) + sector(p1, b, r);
    }

    // Exactly one endpoint inside: one crossing on the segment.
    let sq = disc.max(0.0).sqrt();
    if a_in {
        // Exit crossing uses the larger root.
        let t = ((-qb + sq) / (2.0 * qa)).clamp(0.0, 1.0);
        let p = a + d * t;
        tri(a, p) + sector(p, b, r)
    } else {
        // Entry crossing uses the smaller root.
        let t = ((-qb - sq) / (2.0 * qa)).clamp(0.0, 1.0);
        let p = a + d * t;
        sector(a, p, r) + tri(p, b)
    }
}

/// Exact area of the intersection between `circle` and the simple polygon
/// given by `vertices` in counter-clockwise order.
///
/// The polygon must be simple (non-self-intersecting); convexity is not
/// required. Returns `0.0` for polygons with fewer than three vertices or a
/// zero-radius circle.
pub fn circle_polygon_area(circle: Circle, vertices: &[Point2]) -> f64 {
    if vertices.len() < 3 || circle.radius <= 0.0 {
        return 0.0;
    }
    let mut total = 0.0;
    let n = vertices.len();
    for i in 0..n {
        let a = vertices[i] - circle.center;
        let b = vertices[(i + 1) % n] - circle.center;
        total += edge_contribution(a, b, circle.radius);
    }
    // Clamp tiny negative results caused by floating point noise.
    total.max(0.0).min(circle.area())
}

/// Exact area of the intersection between a disk and an axis-aligned
/// rectangle.
///
/// This is the hot kernel behind the paper's spatial matching feature `fsm`
/// (Eq. 3); semantic regions are unions of disjoint rectangles so region
/// areas are sums of calls to this function.
pub fn circle_rect_intersection_area(circle: Circle, rect: &Rect) -> f64 {
    if circle.radius <= 0.0 || rect.area() <= 0.0 {
        return 0.0;
    }
    // Fast reject: disk bounding box vs rectangle.
    if !circle.bounding_rect().intersects(rect) {
        return 0.0;
    }
    // Fast accept: rectangle entirely inside the disk.
    let r_sq = circle.radius * circle.radius;
    let mut all_in = true;
    for c in rect.corners() {
        if (c - circle.center).norm_sq() > r_sq {
            all_in = false;
            break;
        }
    }
    if all_in {
        return rect.area();
    }
    // Fast accept: disk entirely inside the rectangle.
    if rect.min.x <= circle.center.x - circle.radius
        && rect.max.x >= circle.center.x + circle.radius
        && rect.min.y <= circle.center.y - circle.radius
        && rect.max.y >= circle.center.y + circle.radius
    {
        return circle.area();
    }
    let corners = rect.corners();
    let mut total = 0.0;
    for i in 0..4 {
        let a = corners[i] - circle.center;
        let b = corners[(i + 1) % 4] - circle.center;
        total += edge_contribution(a, b, circle.radius);
    }
    total.max(0.0).min(circle.area().min(rect.area()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn c(x: f64, y: f64, r: f64) -> Circle {
        Circle::new(Point2::new(x, y), r)
    }
    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(Point2::new(x0, y0), Point2::new(x1, y1))
    }

    /// Monte-Carlo reference estimate of the intersection area.
    fn mc_area(circle: Circle, r: &Rect, samples: u32) -> f64 {
        // Deterministic low-discrepancy-ish sweep: regular grid over rect.
        let n = (samples as f64).sqrt() as u32;
        let mut hits = 0u64;
        for i in 0..n {
            for j in 0..n {
                let p = r.at((i as f64 + 0.5) / n as f64, (j as f64 + 0.5) / n as f64);
                if circle.contains(p) {
                    hits += 1;
                }
            }
        }
        r.area() * hits as f64 / (n as f64 * n as f64)
    }

    #[test]
    fn disjoint_is_zero() {
        assert_eq!(
            circle_rect_intersection_area(c(10.0, 10.0, 1.0), &rect(0.0, 0.0, 1.0, 1.0)),
            0.0
        );
    }

    #[test]
    fn rect_inside_circle() {
        let area = circle_rect_intersection_area(c(0.0, 0.0, 10.0), &rect(-1.0, -1.0, 1.0, 1.0));
        assert!((area - 4.0).abs() < 1e-9);
    }

    #[test]
    fn circle_inside_rect() {
        let area = circle_rect_intersection_area(c(0.0, 0.0, 1.0), &rect(-5.0, -5.0, 5.0, 5.0));
        assert!((area - PI).abs() < 1e-9);
    }

    #[test]
    fn half_disk() {
        // Rectangle covering exactly the right half-plane portion of the disk.
        let area = circle_rect_intersection_area(c(0.0, 0.0, 2.0), &rect(0.0, -5.0, 5.0, 5.0));
        assert!((area - 2.0 * PI).abs() < 1e-9, "got {area}");
    }

    #[test]
    fn quarter_disk() {
        let area = circle_rect_intersection_area(c(0.0, 0.0, 2.0), &rect(0.0, 0.0, 5.0, 5.0));
        assert!((area - PI).abs() < 1e-9, "got {area}");
    }

    #[test]
    fn corner_overlap_matches_monte_carlo() {
        let circle = c(1.0, 1.0, 1.5);
        let r = rect(0.0, 0.0, 1.2, 0.9);
        let exact = circle_rect_intersection_area(circle, &r);
        let approx = mc_area(circle, &r, 1_000_000);
        assert!(
            (exact - approx).abs() < 5e-3,
            "exact={exact} approx={approx}"
        );
    }

    #[test]
    fn thin_sliver_matches_monte_carlo() {
        let circle = c(0.0, 0.0, 1.0);
        let r = rect(0.95, -2.0, 3.0, 2.0);
        let exact = circle_rect_intersection_area(circle, &r);
        let approx = mc_area(circle, &r, 4_000_000);
        assert!(
            (exact - approx).abs() < 5e-3,
            "exact={exact} approx={approx}"
        );
    }

    #[test]
    fn polygon_version_agrees_with_rect_version() {
        let circle = c(0.3, -0.2, 1.1);
        let r = rect(-1.0, -1.0, 0.8, 0.6);
        let poly = r.corners();
        let a = circle_rect_intersection_area(circle, &r);
        let b = circle_polygon_area(circle, &poly);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn zero_radius_and_degenerate_rect() {
        assert_eq!(
            circle_rect_intersection_area(c(0.0, 0.0, 0.0), &rect(-1.0, -1.0, 1.0, 1.0)),
            0.0
        );
        assert_eq!(
            circle_rect_intersection_area(c(0.0, 0.0, 1.0), &rect(0.0, -1.0, 0.0, 1.0)),
            0.0
        );
    }

    #[test]
    fn area_bounded_by_both_shapes() {
        let circle = c(0.5, 0.5, 0.7);
        let r = rect(0.0, 0.0, 1.0, 1.0);
        let a = circle_rect_intersection_area(circle, &r);
        assert!(a <= circle.area() + 1e-12);
        assert!(a <= r.area() + 1e-12);
        assert!(a > 0.0);
    }
}
