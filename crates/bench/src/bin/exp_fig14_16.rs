//! Figures 14–16: perfect accuracy and TkPRQ / TkFRPQ precision vs the
//! maximum positioning period T (5/10/15 s, μ = 7 m) on synthetic data,
//! for the six headline methods.

use ism_bench::{
    all_methods, annotate_store, evaluate_accuracy, f3, print_table, query_precision,
    synthetic_dataset, train_c2mn_family, truth_store, vita_space, Scale,
};
use ism_c2mn::{C2mnConfig, ModelStructure};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let pool = scale.pool();
    let space = vita_space(7);
    let variants: [(&'static str, ModelStructure); 2] = [
        ("CMN", ModelStructure::cmn()),
        ("C2MN", ModelStructure::full()),
    ];
    let mut pa_rows: Vec<Vec<String>> = Vec::new();
    let mut prq_rows: Vec<Vec<String>> = Vec::new();
    let mut frpq_rows: Vec<Vec<String>> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    let mut columns: Vec<Vec<(f64, f64, f64)>> = Vec::new();
    for (ti, t) in [5.0, 10.0, 15.0].into_iter().enumerate() {
        let dataset = synthetic_dataset(&space, t, 7.0, scale.objects, 11);
        let mut rng = StdRng::seed_from_u64(2);
        let (train, test) = dataset.split(0.7, &mut rng);
        let config = C2mnConfig {
            sigma_sq: 0.2,
            ..scale.c2mn_config()
        };
        let family = train_c2mn_family(&space, &train, &config, &variants, 3, &scale.pool());
        let methods = all_methods(&space, &train, &family, scale.threads);
        let truth = truth_store(&test, scale.shards);
        for (mi, m) in methods.iter().enumerate() {
            if ti == 0 {
                names.push(m.name.to_string());
                columns.push(Vec::new());
            }
            let acc = evaluate_accuracy(m, &test, 4);
            let store = annotate_store(m, &test, 4, scale.shards);
            let (prq, frpq) = query_precision(&space, &store, &truth, scale.k, 120.0, 10, 5, &pool);
            columns[mi].push((acc.perfect, prq, frpq));
        }
    }
    for (name, vals) in names.iter().zip(&columns) {
        pa_rows.push(
            std::iter::once(name.clone())
                .chain(vals.iter().map(|v| f3(v.0)))
                .collect(),
        );
        prq_rows.push(
            std::iter::once(name.clone())
                .chain(vals.iter().map(|v| f3(v.1)))
                .collect(),
        );
        frpq_rows.push(
            std::iter::once(name.clone())
                .chain(vals.iter().map(|v| f3(v.2)))
                .collect(),
        );
    }
    let headers = ["method", "T=5", "T=10", "T=15"];
    print_table("Figure 14 — PA vs T (mu=7m)", &headers, &pa_rows);
    print_table("Figure 15 — TkPRQ precision vs T", &headers, &prq_rows);
    print_table("Figure 16 — TkFRPQ precision vs T", &headers, &frpq_rows);
}
