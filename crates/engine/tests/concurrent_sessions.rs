//! Concurrent-session oracle: two interleaved [`IngestSession`]s on one
//! engine produce a sealed store **byte-identical** to serial ingestion
//! of the same push order, for thread counts {1, 2, 4} and several
//! interleavings — and no steady-state path ever spawns a thread after
//! pool construction (pinned via `PoolStats::threads_spawned`).
//!
//! [`IngestSession`]: ism_engine::IngestSession

use ism_c2mn::{BatchAnnotator, C2mn, C2mnConfig, Weights};
use ism_engine::EngineBuilder;
use ism_indoor::{BuildingGenerator, IndoorSpace};
use ism_mobility::{Dataset, PositioningConfig, PositioningRecord, SimulationConfig, TimePeriod};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// A small venue and eight p-sequences with duplicate object ids.
fn workload() -> (IndoorSpace, Vec<u64>, Vec<Vec<PositioningRecord>>) {
    let mut rng = StdRng::seed_from_u64(5);
    let space = BuildingGenerator::small_office()
        .generate(&mut rng)
        .unwrap();
    let dataset = Dataset::generate(
        "concurrent",
        &space,
        SimulationConfig::quick(),
        PositioningConfig::synthetic(8.0, 1.5),
        None,
        8,
        &mut rng,
    );
    let sequences: Vec<Vec<PositioningRecord>> = dataset
        .sequences
        .iter()
        .map(|s| s.positioning().collect())
        .collect();
    let ids: Vec<u64> = (0..sequences.len() as u64).map(|i| i % 3).collect();
    (space, ids, sequences)
}

fn model(space: &IndoorSpace) -> C2mn<'_> {
    C2mn::from_weights(space, C2mnConfig::quick_test(), Weights::uniform(1.0))
}

/// Which of two sessions takes push `i`: `pattern` holds run lengths,
/// alternating session 0 / session 1 as it cycles.
fn session_assignments(n: usize, pattern: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(n);
    let mut run = 0;
    while out.len() < n {
        let len = pattern[run % pattern.len()].clamp(1, n - out.len());
        out.extend(std::iter::repeat_n(run % 2, len));
        run += 1;
    }
    out
}

const INTERLEAVINGS: [&[usize]; 4] = [
    &[1],          // strict alternation a, b, a, b, ...
    &[2, 1],       // uneven runs a a, b, a a, b, ...
    &[usize::MAX], // everything in session a, session b stays empty
    &[3, 2, 1],    // shifting runs
];

#[derive(Debug, Clone, Copy)]
struct Case {
    base_seed: u64,
    shards: usize,
    queue_capacity: usize,
    interleaving_id: usize,
    flush_mid: bool,
}

prop_compose! {
    fn arb_case()(
        base_seed in 0u64..1000,
        shards in 1usize..9,
        queue_capacity in 1usize..12,
        interleaving_id in 0usize..INTERLEAVINGS.len(),
        flush_mid in 0u8..2,
    ) -> Case {
        Case { base_seed, shards, queue_capacity, interleaving_id, flush_mid: flush_mid == 1 }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Two live sessions, pushes interleaved between them in a fixed
    /// global order, equal the serial single-stream offline reference —
    /// the interleaving, the queue capacity, a mid-stream flush, and the
    /// thread count are all unobservable in the sealed store.
    #[test]
    fn interleaved_sessions_equal_serial_ingestion(case in arb_case()) {
        let (space, ids, sequences) = workload();
        let n = sequences.len();
        let reference = BatchAnnotator::new(&model(&space), 1, case.base_seed)
            .annotate_into_store(&sequences, &ids, case.shards);
        let assignments = session_assignments(n, INTERLEAVINGS[case.interleaving_id]);
        for threads in THREAD_COUNTS {
            let engine = EngineBuilder::new()
                .threads(threads)
                .shards(case.shards)
                .base_seed(case.base_seed)
                .queue_capacity(case.queue_capacity)
                .build(model(&space))
                .unwrap();
            let mut a = engine.ingest();
            let mut b = engine.ingest();
            for (i, &who) in assignments.iter().enumerate() {
                let session = if who == 0 { &mut a } else { &mut b };
                session.push(ids[i], sequences[i].clone());
                if case.flush_mid && i == n / 2 {
                    a.flush();
                }
            }
            let pushed_a = a.seal();
            let pushed_b = b.seal();
            prop_assert_eq!(pushed_a + pushed_b, n as u64);
            prop_assert_eq!(engine.sequences_ingested(), n as u64);
            prop_assert_eq!(engine.sequences_committed(), n as u64);
            prop_assert_eq!(engine.store().num_postings(), reference.num_postings());
            for s in 0..case.shards {
                let want: Vec<_> = reference
                    .iter_shard(s)
                    .map(|(id, sem)| (id, sem.to_vec()))
                    .collect();
                let got: Vec<_> = engine
                    .store()
                    .iter_shard(s)
                    .map(|(id, sem)| (id, sem.to_vec()))
                    .collect();
                prop_assert_eq!(
                    got, want,
                    "shard {} diverged at threads={} interleaving={} capacity={} flush_mid={}",
                    s, threads, case.interleaving_id, case.queue_capacity, case.flush_mid
                );
            }
        }
    }
}

/// Sessions racing from real OS threads — with queries running against
/// the live store at the same time — never lose a sequence, never
/// deadlock, and leave the engine fully committed. (Byte-identity under
/// real races is covered by the interleaved test above: the race only
/// permutes the stamped order, which the reorder buffer serialises.)
#[test]
fn racing_sessions_commit_every_sequence() {
    let (space, ids, sequences) = workload();
    let n = sequences.len();
    let split = n / 2;
    let engine = EngineBuilder::new()
        .threads(4)
        .shards(3)
        .base_seed(11)
        .queue_capacity(2)
        .build(model(&space))
        .unwrap();
    let regions: Vec<_> = space.regions().iter().map(|r| r.id).collect();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut session = engine.ingest();
            for i in 0..split {
                session.push(ids[i], sequences[i].clone());
            }
            // Drop seals: an engine-wide barrier racing the other session.
        });
        scope.spawn(|| {
            let mut session = engine.ingest();
            for i in split..n {
                session.push(ids[i], sequences[i].clone());
            }
            session.seal();
        });
        // Queries observe only sealed prefixes while the race runs.
        scope.spawn(|| {
            for _ in 0..10 {
                let _ = engine.tk_prq(&regions, 3, TimePeriod::new(0.0, 1e9));
                std::thread::yield_now();
            }
        });
    });
    assert_eq!(engine.sequences_ingested(), n as u64);
    assert_eq!(engine.sequences_committed(), n as u64);
    let expected_objects: std::collections::BTreeSet<_> = ids.iter().copied().collect();
    assert_eq!(engine.num_objects(), expected_objects.len());
    assert_eq!(engine.store().num_pending(), 0);
    for id in expected_objects {
        assert!(engine.semantics_of(id).is_some_and(|s| !s.is_empty()));
    }
}

/// The acceptance pin for the persistent pool: after engine construction
/// no steady-state path — pipelined ingest, batch fan-out, sealing,
/// one-shot and standing queries, offline helpers — ever spawns another
/// thread. Work provably ran on the pool (claims and dispatches grew).
#[test]
fn steady_state_paths_never_spawn_threads() {
    let (space, ids, sequences) = workload();
    let engine = EngineBuilder::new()
        .threads(3)
        .shards(3)
        .base_seed(7)
        .queue_capacity(2)
        .build(model(&space))
        .unwrap();
    let spawned = engine.pool_stats().threads_spawned;
    assert_eq!(spawned, engine.threads() - 1);

    let regions: Vec<_> = space.regions().iter().map(|r| r.id).collect();
    let qt = TimePeriod::new(0.0, 1e9);
    for round in 0..2 {
        let mut session = engine.ingest();
        for i in 0..sequences.len() {
            session.push(ids[i] + round, sequences[i].clone());
        }
        session.seal();
        let _ = engine.tk_prq(&regions, 3, qt);
        let _ = engine.tk_frpq(&regions, 3, qt);
    }
    let standing = engine.standing_tk_prq(&regions, 3, qt);
    assert!(engine.standing_prq_result(standing).is_some());
    let _ = engine.label_batch(&sequences[..2]);
    let _ = engine.annotate_batch(&sequences[..2]);

    let stats = engine.pool_stats();
    assert_eq!(
        stats.threads_spawned, spawned,
        "a steady-state path spawned a thread: {stats:?}"
    );
    assert!(
        stats.items_claimed > 0,
        "no work ran on the pool: {stats:?}"
    );
    assert!(
        stats.fanout_calls + stats.inline_calls > 0,
        "no blocking call dispatched: {stats:?}"
    );

    // A second engine on its own pool starts its own counter; the first
    // engine's pool still never grows.
    let other = EngineBuilder::new()
        .threads(2)
        .build(model(&space))
        .unwrap();
    assert_eq!(other.pool_stats().threads_spawned, 1);
    assert_eq!(engine.pool_stats().threads_spawned, spawned);
}
