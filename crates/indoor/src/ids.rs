//! Strongly-typed identifiers for indoor entities.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Index into dense storage.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(v: usize) -> Self {
                $name(v as u32)
            }
        }
    };
}

id_type!(
    /// Identifier of an indoor partition (room / hallway segment).
    PartitionId,
    "P"
);
id_type!(
    /// Identifier of a door connecting two partitions.
    DoorId,
    "D"
);
id_type!(
    /// Identifier of a semantic region (union of partitions).
    RegionId,
    "R"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(PartitionId(3).to_string(), "P3");
        assert_eq!(DoorId(0).to_string(), "D0");
        assert_eq!(RegionId(42).to_string(), "R42");
    }

    #[test]
    fn index_round_trip() {
        let id = RegionId::from(17usize);
        assert_eq!(id.index(), 17);
    }

    #[test]
    fn ordering_follows_numeric_value() {
        assert!(RegionId(2) < RegionId(10));
    }
}
