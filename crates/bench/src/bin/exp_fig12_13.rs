//! Figures 12 & 13: TkPRQ / TkFRPQ precision vs the query interval QT
//! (60 / 120 / 180 minutes) for all ten methods on the mall dataset.

use ism_bench::{
    all_methods, annotate_store, f3, mall_dataset, print_table, query_precision, train_c2mn_family,
    truth_store, Scale, C2MN_VARIANTS,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let pool = scale.pool();
    let (space, dataset) = mall_dataset(&scale, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let (train, test) = dataset.split(0.7, &mut rng);
    let family = train_c2mn_family(
        &space,
        &train,
        &scale.c2mn_config(),
        &C2MN_VARIANTS,
        3,
        &scale.pool(),
    );
    let methods = all_methods(&space, &train, &family, scale.threads);
    let truth = truth_store(&test, scale.shards);

    let mut prq_rows = Vec::new();
    let mut frpq_rows = Vec::new();
    for m in &methods {
        let store = annotate_store(m, &test, 4, scale.shards);
        let mut prq_row = vec![m.name.to_string()];
        let mut frpq_row = vec![m.name.to_string()];
        for qt in [60.0, 120.0, 180.0] {
            let (prq, frpq) = query_precision(&space, &store, &truth, scale.k, qt, 10, 5, &pool);
            prq_row.push(f3(prq));
            frpq_row.push(f3(frpq));
        }
        prq_rows.push(prq_row);
        frpq_rows.push(frpq_row);
    }
    let headers = ["method", "QT=60", "QT=120", "QT=180"];
    print_table("Figure 12 — TkPRQ precision vs QT", &headers, &prq_rows);
    print_table("Figure 13 — TkFRPQ precision vs QT", &headers, &frpq_rows);
}
