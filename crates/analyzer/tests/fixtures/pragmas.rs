//! allow-pragma fixture: suppression, trailing form, and misuse.

// analyzer: allow(lib-panic) fixture: the caller checks emptiness first
pub fn suppressed(xs: &[u32]) -> u32 {
    xs[0]
}

pub fn trailing(v: Option<u32>) -> u32 {
    v.unwrap() // analyzer: allow(lib-panic) fixture: infallible by construction
}

// analyzer: allow(lib-panic) stale pragma with nothing to suppress
pub fn clean() -> u32 {
    7
}

// analyzer: allow(made-up-rule) no such rule
pub fn unknown() -> u32 {
    7
}

// analyzer: allow(lib-panic)
pub fn reasonless(xs: &[u32]) -> u32 {
    xs[0]
}
