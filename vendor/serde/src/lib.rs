//! Vendored, offline subset of the `serde` facade.
//!
//! Exposes the `Serialize`/`Deserialize` traits and re-exports the (no-op)
//! derive macros so `use serde::{Deserialize, Serialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged. No data format
//! crates exist in this environment, so the traits carry no methods yet;
//! they are markers that reserve the API surface for a future PR that
//! vendors a JSON/bincode backend.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
