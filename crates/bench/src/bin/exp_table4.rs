//! Table IV: labeling accuracy (RA / EA / CA / PA) of all ten methods on
//! the mall dataset with a 70/30 split.

use ism_bench::{
    all_methods, evaluate_accuracy, f3, mall_dataset, print_table, train_c2mn_family, Scale,
    C2MN_VARIANTS,
};
use ism_eval::PAPER_LAMBDA;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let (space, dataset) = mall_dataset(&scale, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let (train, test) = dataset.split(0.7, &mut rng);
    eprintln!(
        "mall: {} train / {} test sequences",
        train.len(),
        test.len()
    );
    let family = train_c2mn_family(
        &space,
        &train,
        &scale.c2mn_config(),
        &C2MN_VARIANTS,
        3,
        &scale.pool(),
    );
    let methods = all_methods(&space, &train, &family, scale.threads);
    let mut rows = Vec::new();
    for m in &methods {
        let acc = evaluate_accuracy(m, &test, 4);
        rows.push(vec![
            m.name.to_string(),
            f3(acc.region),
            f3(acc.event),
            f3(acc.combined(PAPER_LAMBDA)),
            f3(acc.perfect),
        ]);
    }
    print_table(
        "Table IV — labeling accuracy",
        &["method", "RA", "EA", "CA", "PA"],
        &rows,
    );
}
