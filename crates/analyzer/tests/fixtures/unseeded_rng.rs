//! unseeded-rng fixture: OS entropy and underived seeds.

pub fn entropy() -> u64 {
    let mut rng = rand::thread_rng();
    rng.random()
}

pub fn reseeded() -> StdRng {
    StdRng::from_entropy()
}

pub fn laundered(x: u64) -> StdRng {
    StdRng::seed_from_u64(x)
}

pub fn derived(base_seed: u64, i: u64) -> StdRng {
    StdRng::seed_from_u64(sequence_seed(base_seed, i))
}

pub fn constant() -> StdRng {
    StdRng::seed_from_u64(0xDEAD_BEEF)
}
