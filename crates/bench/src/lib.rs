//! Shared harness for the paper-reproduction experiments.
//!
//! Every table and figure of the paper's evaluation (§V) has a binary in
//! `src/bin/` built on these helpers: dataset construction, method
//! training/labeling, accuracy evaluation, query-precision evaluation, and
//! aligned table printing.
//!
//! **Scaling.** The paper's experiments ran on a 10-core Xeon over five
//! million records with `M = 800` MCMC samples. The defaults here are
//! scaled down to finish in minutes on a laptop; set the environment
//! variables `REPRO_OBJECTS`, `REPRO_MCMC_M`, `REPRO_MAX_ITER`, `REPRO_K`
//! to approach paper scale. The *shape* of the results (method ranking,
//! trends across sweeps) is what the harness reproduces; absolute numbers
//! depend on scale.

#![deny(missing_docs)]

use ism_baselines::{HmmDc, HmmDcConfig, SapConfig, SapDa, SapDv, Smot, SmotConfig};
use ism_c2mn::{C2mn, C2mnConfig, FirstConfigured, ModelStructure};
use ism_eval::{top_k_precision, AccuracyAccumulator, LabelAccuracy};
use ism_indoor::{BuildingGenerator, IndoorSpace, RegionId, RegionKind};
use ism_mobility::{
    merge_labels, Dataset, LabeledSequence, MobilityEvent, PositioningConfig, PositioningRecord,
    PreprocessConfig, SimulationConfig, TimePeriod,
};
use ism_queries::{tk_frpq, tk_prq, SemanticsStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Experiment scale, overridable through environment variables.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Objects simulated for each dataset (`REPRO_OBJECTS`).
    pub objects: usize,
    /// MCMC samples per learning step (`REPRO_MCMC_M`).
    pub mcmc_m: usize,
    /// Outer iterations of Algorithm 1 (`REPRO_MAX_ITER`).
    pub max_iter: usize,
    /// Top-k size for the query experiments (`REPRO_K`).
    pub k: usize,
}

impl Scale {
    /// Reads the scale from the environment, with laptop defaults.
    pub fn from_env() -> Self {
        let get = |name: &str, default: usize| -> usize {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        Scale {
            objects: get("REPRO_OBJECTS", 60),
            mcmc_m: get("REPRO_MCMC_M", 10),
            max_iter: get("REPRO_MAX_ITER", 6),
            k: get("REPRO_K", 10),
        }
    }

    /// The C2MN configuration at this scale (real-data profile).
    pub fn c2mn_config(&self) -> C2mnConfig {
        C2mnConfig {
            max_iter: self.max_iter,
            mcmc_m: self.mcmc_m,
            mcmc_burn_in: 1,
            inner_lbfgs_iters: 5,
            uncertainty_radius: 10.0,
            ..C2mnConfig::paper_real()
        }
    }
}

/// Splits long sequences into chunks so segment-window costs stay bounded.
pub fn chunk_sequences(seqs: &[LabeledSequence], max_len: usize) -> Vec<LabeledSequence> {
    let mut out = Vec::new();
    for s in seqs {
        for chunk in s.records.chunks(max_len) {
            if chunk.len() >= 2 {
                out.push(LabeledSequence {
                    object_id: s.object_id,
                    records: chunk.to_vec(),
                });
            }
        }
    }
    out
}

/// Builds the "mall" dataset standing in for the paper's real Wi-Fi data:
/// a generated 7-floor mall, Wi-Fi-like noise, η/ψ preprocessing.
pub fn mall_dataset(scale: &Scale, seed: u64) -> (IndoorSpace, Dataset) {
    let mut rng = StdRng::seed_from_u64(seed);
    let space = BuildingGenerator::mall().generate(&mut rng).unwrap();
    let mut dataset = Dataset::generate(
        "mall",
        &space,
        SimulationConfig::paper(),
        PositioningConfig::wifi_mall(),
        Some(PreprocessConfig::default()),
        scale.objects,
        &mut rng,
    );
    dataset.sequences = chunk_sequences(&dataset.sequences, 200);
    (space, dataset)
}

/// Builds one synthetic dataset over a Vita-like building for a `(T, μ)`
/// grid point (Table V).
pub fn synthetic_dataset(
    space: &IndoorSpace,
    t: f64,
    mu: f64,
    objects: usize,
    seed: u64,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dataset = Dataset::generate(
        &format!("T{}mu{}", t as u32, mu as u32),
        space,
        SimulationConfig::paper(),
        PositioningConfig::synthetic(t, mu),
        None,
        objects,
        &mut rng,
    );
    dataset.sequences = chunk_sequences(&dataset.sequences, 250);
    dataset
}

/// Generates the Vita-like venue of the synthetic experiments.
pub fn vita_space(seed: u64) -> IndoorSpace {
    BuildingGenerator::vita_like()
        .generate(&mut StdRng::seed_from_u64(seed))
        .unwrap()
}

/// A labeling closure: per-record (region, event) labels from a p-sequence.
pub type Labeler<'a> =
    Box<dyn Fn(&[PositioningRecord], &mut StdRng) -> Vec<(RegionId, MobilityEvent)> + 'a>;

/// A method under evaluation: a name plus a labeling closure.
pub struct Method<'a> {
    /// Display name matching the paper's tables.
    pub name: &'static str,
    labeler: Labeler<'a>,
}

impl<'a> Method<'a> {
    /// Creates a method from a name and labeling closure.
    pub fn new<F>(name: &'static str, labeler: F) -> Self
    where
        F: Fn(&[PositioningRecord], &mut StdRng) -> Vec<(RegionId, MobilityEvent)> + 'a,
    {
        Method {
            name,
            labeler: Box::new(labeler),
        }
    }

    /// Labels one positioning sequence.
    pub fn label(
        &self,
        records: &[PositioningRecord],
        rng: &mut StdRng,
    ) -> Vec<(RegionId, MobilityEvent)> {
        (self.labeler)(records, rng)
    }
}

/// The C2MN structural variants in the paper's table order.
pub const C2MN_VARIANTS: [(&str, ModelStructure); 6] = [
    ("CMN", ModelStructure::cmn()),
    ("C2MN/Tran", ModelStructure::no_transitions()),
    ("C2MN/Syn", ModelStructure::no_synchronizations()),
    ("C2MN/ES", ModelStructure::no_event_segmentation()),
    ("C2MN/SS", ModelStructure::no_space_segmentation()),
    ("C2MN", ModelStructure::full()),
];

/// Trains the C2MN family on `train`, returning `(name, model)` pairs.
pub fn train_c2mn_family<'a>(
    space: &'a IndoorSpace,
    train: &[LabeledSequence],
    base: &C2mnConfig,
    variants: &[(&'static str, ModelStructure)],
    seed: u64,
) -> Vec<(&'static str, C2mn<'a>)> {
    variants
        .iter()
        .map(|(name, structure)| {
            let mut rng = StdRng::seed_from_u64(seed);
            let config = base.clone().with_structure(*structure);
            let model = C2mn::train(space, train, &config, &mut rng).expect("training data");
            (*name, model)
        })
        .collect()
}

/// Builds all ten methods of Table IV: the four non-C2MN baselines plus
/// the six C2MN structures (pre-trained).
pub fn all_methods<'a>(
    space: &'a IndoorSpace,
    train: &'a [LabeledSequence],
    family: &'a [(&'static str, C2mn<'a>)],
) -> Vec<Method<'a>> {
    let mut methods: Vec<Method<'a>> = Vec::new();
    let smot = Smot::new(space, SmotConfig::default());
    methods.push(Method {
        name: "SMoT",
        labeler: Box::new(move |r, _| smot.label(r)),
    });
    let hmm_dc = HmmDc::train(space, train, HmmDcConfig::default());
    methods.push(Method {
        name: "HMM+DC",
        labeler: Box::new(move |r, _| hmm_dc.label(r)),
    });
    let sapdv = SapDv::new(space, SapConfig::default());
    methods.push(Method {
        name: "SAPDV",
        labeler: Box::new(move |r, _| sapdv.label(r)),
    });
    let sapda = SapDa::new(space, SapConfig::default());
    methods.push(Method {
        name: "SAPDA",
        labeler: Box::new(move |r, _| sapda.label(r)),
    });
    for (name, model) in family {
        methods.push(Method {
            name,
            labeler: Box::new(move |r, rng| model.label(r, rng)),
        });
    }
    methods
}

/// Evaluates one method's labeling accuracy over the test sequences.
pub fn evaluate_accuracy(
    method: &Method<'_>,
    test: &[LabeledSequence],
    seed: u64,
) -> LabelAccuracy {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acc = AccuracyAccumulator::new();
    for seq in test {
        let records: Vec<PositioningRecord> = seq.positioning().collect();
        let labels = method.label(&records, &mut rng);
        acc.add(&labels, seq.truth_labels());
    }
    acc.finish()
}

/// Builds a [`SemanticsStore`] from a method's annotations of the test set.
pub fn annotate_store(method: &Method<'_>, test: &[LabeledSequence], seed: u64) -> SemanticsStore {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = SemanticsStore::new();
    for seq in test {
        let records: Vec<PositioningRecord> = seq.positioning().collect();
        let labels = method.label(&records, &mut rng);
        let times: Vec<f64> = records.iter().map(|r| r.t).collect();
        store.insert(seq.object_id, merge_labels(&times, &labels));
    }
    store
}

/// Ground-truth store from the test labels themselves.
pub fn truth_store(test: &[LabeledSequence]) -> SemanticsStore {
    let mut store = SemanticsStore::new();
    for seq in test {
        let times: Vec<f64> = seq.records.iter().map(|r| r.record.t).collect();
        let labels: Vec<(RegionId, MobilityEvent)> = seq.truth_labels().collect();
        store.insert(seq.object_id, merge_labels(&times, &labels));
    }
    store
}

/// Average TkPRQ and TkFRPQ precision of a store against the ground truth
/// over `trials` random query sets within `qt_minutes`-long windows.
pub fn query_precision(
    space: &IndoorSpace,
    store: &SemanticsStore,
    truth: &SemanticsStore,
    k: usize,
    qt_minutes: f64,
    trials: usize,
    seed: u64,
) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let shops: Vec<RegionId> = space
        .regions()
        .iter()
        .filter(|r| r.kind == RegionKind::Shop)
        .map(|r| r.id)
        .collect();
    let horizon = SimulationConfig::paper().duration;
    let mut prq_sum = 0.0;
    let mut frpq_sum = 0.0;
    for _ in 0..trials {
        // Random query set: half of the shop regions (paper: 101 of 202).
        let mut q = shops.clone();
        for i in (1..q.len()).rev() {
            let j = rng.random_range(0..=i);
            q.swap(i, j);
        }
        q.truncate((shops.len() / 2).max(1));
        let start = rng.random_range(0.0..(horizon - qt_minutes * 60.0).max(1.0));
        let qt = TimePeriod::new(start, start + qt_minutes * 60.0);

        let true_prq: Vec<RegionId> = tk_prq(truth, &q, k, qt).into_iter().map(|x| x.0).collect();
        let got_prq: Vec<RegionId> = tk_prq(store, &q, k, qt).into_iter().map(|x| x.0).collect();
        prq_sum += top_k_precision(&got_prq, &true_prq);

        let true_frpq: Vec<(RegionId, RegionId)> =
            tk_frpq(truth, &q, k, qt).into_iter().map(|x| x.0).collect();
        let got_frpq: Vec<(RegionId, RegionId)> =
            tk_frpq(store, &q, k, qt).into_iter().map(|x| x.0).collect();
        frpq_sum += top_k_precision(&got_frpq, &true_frpq);
    }
    (prq_sum / trials as f64, frpq_sum / trials as f64)
}

/// Prints an aligned table followed by a machine-readable CSV block.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
    println!("\ncsv:{}", headers.join(","));
    for row in rows {
        println!("csv:{}", row.join(","));
    }
}

/// Convenience: format a float with three decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Returns a C2MN config with `first_configured = Regions` (the C2MN@R
/// variant of Fig. 11).
pub fn at_r_config(base: &C2mnConfig) -> C2mnConfig {
    C2mnConfig {
        first_configured: FirstConfigured::Regions,
        ..base.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_reads_defaults() {
        let s = Scale::from_env();
        assert!(s.objects > 0 && s.mcmc_m > 0 && s.max_iter > 0 && s.k > 0);
    }

    #[test]
    fn chunking_respects_bounds() {
        let space = BuildingGenerator::small_office()
            .generate(&mut StdRng::seed_from_u64(1))
            .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let d = Dataset::generate(
            "d",
            &space,
            SimulationConfig::quick(),
            PositioningConfig::synthetic(5.0, 2.0),
            None,
            3,
            &mut rng,
        );
        let chunks = chunk_sequences(&d.sequences, 40);
        assert!(chunks
            .iter()
            .all(|c| c.records.len() <= 40 && c.records.len() >= 2));
        let total: usize = chunks.iter().map(|c| c.records.len()).sum();
        let orig: usize = d.sequences.iter().map(|c| c.records.len()).sum();
        assert!(total <= orig);
    }

    #[test]
    fn truth_store_has_one_entry_per_sequence() {
        let space = BuildingGenerator::small_office()
            .generate(&mut StdRng::seed_from_u64(1))
            .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let d = Dataset::generate(
            "d",
            &space,
            SimulationConfig::quick(),
            PositioningConfig::synthetic(5.0, 2.0),
            None,
            4,
            &mut rng,
        );
        let store = truth_store(&d.sequences);
        assert_eq!(store.len(), d.sequences.len());
    }
}
