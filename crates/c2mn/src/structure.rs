//! Clique-template structure and the shared weight vector.

use serde::{Deserialize, Serialize};

/// Total number of feature components across all clique templates:
/// six scalar templates plus two 3-dimensional segmentation templates.
pub const NUM_FEATURES: usize = 12;

/// Indices of the feature components inside a [`Weights`] vector.
pub(crate) mod idx {
    /// Spatial matching `fsm`.
    pub const SM: usize = 0;
    /// Event matching `fem`.
    pub const EM: usize = 1;
    /// Space transition `fst`.
    pub const ST: usize = 2;
    /// Event transition `fet`.
    pub const ET: usize = 3;
    /// Spatial consistency `fsc`.
    pub const SC: usize = 4;
    /// Event consistency `fec`.
    pub const EC: usize = 5;
    /// Event-based segmentation `fes` (3 components).
    pub const ES: usize = 6;
    /// Space-based segmentation `fss` (3 components).
    pub const SS: usize = 9;
}

/// Which clique templates are active — the paper's structural variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelStructure {
    /// Transition cliques (`fst`, `fet`).
    pub transitions: bool,
    /// Synchronization cliques (`fsc`, `fec`).
    pub synchronizations: bool,
    /// Event-based segmentation cliques (`fes`).
    pub event_segmentation: bool,
    /// Space-based segmentation cliques (`fss`).
    pub space_segmentation: bool,
}

impl ModelStructure {
    /// Full C2MN.
    pub const fn full() -> Self {
        ModelStructure {
            transitions: true,
            synchronizations: true,
            event_segmentation: true,
            space_segmentation: true,
        }
    }

    /// CMN: both segmentation templates removed — regions and events
    /// decouple and are inferred independently.
    pub const fn cmn() -> Self {
        ModelStructure {
            transitions: true,
            synchronizations: true,
            event_segmentation: false,
            space_segmentation: false,
        }
    }

    /// C2MN/Tran: no transition cliques.
    pub const fn no_transitions() -> Self {
        ModelStructure {
            transitions: false,
            ..Self::full()
        }
    }

    /// C2MN/Syn: no synchronization cliques.
    pub const fn no_synchronizations() -> Self {
        ModelStructure {
            synchronizations: false,
            ..Self::full()
        }
    }

    /// C2MN/ES: no event-based segmentation cliques.
    pub const fn no_event_segmentation() -> Self {
        ModelStructure {
            event_segmentation: false,
            ..Self::full()
        }
    }

    /// C2MN/SS: no space-based segmentation cliques.
    pub const fn no_space_segmentation() -> Self {
        ModelStructure {
            space_segmentation: false,
            ..Self::full()
        }
    }

    /// Whether regions and events are coupled (any segmentation template).
    pub fn is_coupled(&self) -> bool {
        self.event_segmentation || self.space_segmentation
    }

    /// Mask of weight components that can receive gradient from a
    /// region-chain sampling step (the region-relevant dependencies of
    /// Table II, plus both segmentation templates whose features change
    /// with region labels).
    pub fn region_step_mask(&self) -> [bool; NUM_FEATURES] {
        let mut m = [false; NUM_FEATURES];
        m[idx::SM] = true;
        m[idx::ST] = self.transitions;
        m[idx::SC] = self.synchronizations;
        for k in 0..3 {
            m[idx::ES + k] = self.event_segmentation;
            m[idx::SS + k] = self.space_segmentation;
        }
        m
    }

    /// Mask of weight components that can receive gradient from an
    /// event-chain sampling step.
    pub fn event_step_mask(&self) -> [bool; NUM_FEATURES] {
        let mut m = [false; NUM_FEATURES];
        m[idx::EM] = true;
        m[idx::ET] = self.transitions;
        m[idx::EC] = self.synchronizations;
        for k in 0..3 {
            m[idx::ES + k] = self.event_segmentation;
            m[idx::SS + k] = self.space_segmentation;
        }
        m
    }
}

impl Default for ModelStructure {
    fn default() -> Self {
        Self::full()
    }
}

/// The shared parameter vector: one weight per feature component per clique
/// template (parameter sharing, §II-B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Weights(pub [f64; NUM_FEATURES]);

impl Weights {
    /// All-zero weights.
    pub fn zeros() -> Self {
        Weights([0.0; NUM_FEATURES])
    }

    /// Uniform positive initial weights — a sensible starting point since
    /// all features are constructed as compatibilities.
    pub fn uniform(value: f64) -> Self {
        Weights([value; NUM_FEATURES])
    }

    /// Dot product with a feature vector.
    #[inline]
    pub fn dot(&self, features: &[f64; NUM_FEATURES]) -> f64 {
        let mut s = 0.0;
        for (w, f) in self.0.iter().zip(features) {
            s += w * f;
        }
        s
    }

    /// Chebyshev (∞-norm) distance to another weight vector, optionally
    /// restricted to a mask.
    pub fn chebyshev(&self, other: &Weights, mask: Option<&[bool; NUM_FEATURES]>) -> f64 {
        let mut m = 0.0f64;
        for i in 0..NUM_FEATURES {
            if mask.is_none_or(|mk| mk[i]) {
                m = m.max((self.0[i] - other.0[i]).abs());
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_toggle_expected_templates() {
        assert!(ModelStructure::full().is_coupled());
        assert!(!ModelStructure::cmn().is_coupled());
        assert!(!ModelStructure::no_transitions().transitions);
        assert!(ModelStructure::no_transitions().is_coupled());
        assert!(!ModelStructure::no_event_segmentation().event_segmentation);
        assert!(ModelStructure::no_event_segmentation().space_segmentation);
    }

    #[test]
    fn masks_are_disjoint_on_chain_specific_templates() {
        let s = ModelStructure::full();
        let r = s.region_step_mask();
        let e = s.event_step_mask();
        assert!(r[idx::SM] && !e[idx::SM]);
        assert!(e[idx::EM] && !r[idx::EM]);
        assert!(r[idx::ST] && !e[idx::ST]);
        assert!(e[idx::ET] && !r[idx::ET]);
        // Segmentation templates are updated by both steps.
        for k in 0..3 {
            assert!(r[idx::ES + k] && e[idx::ES + k]);
            assert!(r[idx::SS + k] && e[idx::SS + k]);
        }
    }

    #[test]
    fn masks_respect_structure() {
        let s = ModelStructure::cmn();
        let r = s.region_step_mask();
        for k in 0..3 {
            assert!(!r[idx::ES + k] && !r[idx::SS + k]);
        }
        let s = ModelStructure::no_transitions();
        assert!(!s.region_step_mask()[idx::ST]);
        assert!(!s.event_step_mask()[idx::ET]);
    }

    #[test]
    fn weight_operations() {
        let a = Weights::uniform(1.0);
        let mut f = [0.0; NUM_FEATURES];
        f[0] = 2.0;
        f[11] = 3.0;
        assert_eq!(a.dot(&f), 5.0);
        let mut b = a.clone();
        b.0[4] += 0.5;
        assert_eq!(a.chebyshev(&b, None), 0.5);
        let mut mask = [false; NUM_FEATURES];
        mask[0] = true;
        assert_eq!(a.chebyshev(&b, Some(&mask)), 0.0);
    }
}
