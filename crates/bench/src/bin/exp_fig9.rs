//! Figure 9: training time of the C2MN family vs max_iter (paper sweeps
//! 50–120; values here scale with REPRO_MAX_ITER).

use ism_bench::{f3, mall_dataset, print_table, train_c2mn_family, Scale, C2MN_VARIANTS};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let (space, dataset) = mall_dataset(&scale, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let (train, _) = dataset.split(0.7, &mut rng);
    let base = scale.max_iter.max(2);
    let sweep = [base / 2, base, (base * 3) / 2, base * 2];
    let mut rows = Vec::new();
    for iters in sweep {
        let mut config = scale.c2mn_config();
        config.max_iter = iters.max(1);
        config.delta = 0.0; // force running all iterations, as in the sweep
        let family = train_c2mn_family(&space, &train, &config, &C2MN_VARIANTS, 3, &scale.pool());
        let mut row = vec![format!("{iters}")];
        for (_, model) in &family {
            row.push(f3(model.report().train_seconds));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("max_iter")
        .chain(C2MN_VARIANTS.iter().map(|(n, _)| *n))
        .collect();
    print_table("Figure 9 — training time (s) vs max_iter", &headers, &rows);
}
