//! Side-by-side comparison of all annotation methods on one dataset —
//! a miniature of the paper's Table IV. The C2MN family decodes through
//! `SemanticsEngine::label_batch` (deterministic parallel batch decoding);
//! the baselines label sequentially.
//!
//! Run with: `cargo run --release --example method_comparison`

use indoor_semantics::baselines::{HmmDcConfig, SapConfig, SmotConfig};
use indoor_semantics::eval::{AccuracyAccumulator, PAPER_LAMBDA};
use indoor_semantics::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let venue = BuildingGenerator::small_office()
        .generate(&mut rng)
        .unwrap();
    let dataset = Dataset::generate(
        "cmp",
        &venue,
        SimulationConfig::quick(),
        PositioningConfig::synthetic(10.0, 2.5),
        None,
        14,
        &mut rng,
    );
    let (train, test) = dataset.split(0.7, &mut rng);
    let sequences: Vec<Vec<PositioningRecord>> =
        test.iter().map(|s| s.positioning().collect()).collect();

    let smot = Smot::new(&venue, SmotConfig::default());
    let hmm_dc = HmmDc::train(&venue, &train, HmmDcConfig::default());
    let sapdv = SapDv::new(&venue, SapConfig::default());
    let sapda = SapDa::new(&venue, SapConfig::default());
    // Both C2MN variants run inside engines: same seed, same pool sizing,
    // deterministic decode regardless of thread count.
    let cmn = EngineBuilder::new()
        .base_seed(4)
        .train(
            &venue,
            &train,
            &C2mnConfig::quick_test().with_structure(ModelStructure::cmn()),
            &mut rng,
        )
        .unwrap();
    let c2mn = EngineBuilder::new()
        .base_seed(4)
        .train(&venue, &train, &C2mnConfig::quick_test(), &mut rng)
        .unwrap();

    println!(
        "{:<8} {:>6} {:>6} {:>6} {:>6}",
        "method", "RA", "EA", "CA", "PA"
    );
    let report = |name: &str, all_labels: &[Vec<(RegionId, MobilityEvent)>]| {
        let mut acc = AccuracyAccumulator::new();
        for (labels, seq) in all_labels.iter().zip(&test) {
            acc.add(labels, seq.truth_labels());
        }
        let m = acc.finish();
        println!(
            "{:<8} {:>6.3} {:>6.3} {:>6.3} {:>6.3}",
            name,
            m.region,
            m.event,
            m.combined(PAPER_LAMBDA),
            m.perfect
        );
    };
    type Labels = Vec<(RegionId, MobilityEvent)>;
    let per_sequence = |label: &dyn Fn(&[PositioningRecord]) -> Labels| {
        sequences.iter().map(|r| label(r)).collect::<Vec<_>>()
    };
    report("SMoT", &per_sequence(&|r| smot.label(r)));
    report("HMM+DC", &per_sequence(&|r| hmm_dc.label(r)));
    report("SAPDV", &per_sequence(&|r| sapdv.label(r)));
    report("SAPDA", &per_sequence(&|r| sapda.label(r)));
    report("CMN", &cmn.label_batch(&sequences));
    report("C2MN", &c2mn.label_batch(&sequences));
}
