//! Oracle-equivalence property suite: for random stores and queries, the
//! sharded-parallel engine at shard counts {1, 3, 8} × thread counts
//! {1, 2, 4} returns exactly what the flat sequential reference returns,
//! and repeated runs are deterministic.

use ism_indoor::RegionId;
use ism_mobility::{MobilityEvent, MobilitySemantics, TimePeriod};
use ism_queries::{
    tk_frpq, tk_frpq_sharded, tk_prq, tk_prq_sharded, SemanticsStore, ShardedSemanticsStore,
};
use ism_runtime::WorkerPool;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHARD_COUNTS: [usize; 3] = [1, 3, 8];
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Parameters of one random-store case.
#[derive(Debug, Clone, Copy)]
struct Case {
    seed: u64,
    objects: u64,
    regions: u32,
    query_regions: u32,
    k: usize,
    qt_start: f64,
    qt_len: f64,
}

/// Builds a random store: `objects` timelines of stays/passes over
/// `regions` regions spanning [0, 1000], with occasional duplicate object
/// ids (exercising the insert-extend path).
fn random_store(case: &Case) -> SemanticsStore {
    let mut rng = StdRng::seed_from_u64(case.seed);
    let mut store = SemanticsStore::new();
    for i in 0..case.objects {
        // ~1 in 4 entries reuses an earlier object id.
        let object = if i > 0 && rng.random_bool(0.25) {
            rng.random_range(0..i)
        } else {
            i
        };
        let mut t = rng.random_range(0.0..100.0);
        let mut timeline = Vec::new();
        while t < 1000.0 {
            let duration = rng.random_range(1.0..80.0);
            timeline.push(MobilitySemantics {
                region: RegionId(rng.random_range(0..case.regions)),
                period: TimePeriod::new(t, t + duration),
                event: if rng.random_bool(0.6) {
                    MobilityEvent::Stay
                } else {
                    MobilityEvent::Pass
                },
            });
            t += duration + rng.random_range(0.5..30.0);
        }
        store.insert(object, timeline);
    }
    store
}

fn random_query(case: &Case) -> (Vec<RegionId>, TimePeriod) {
    let mut rng = StdRng::seed_from_u64(case.seed ^ 0xABCD_EF01);
    let mut query: Vec<RegionId> = (0..case.query_regions.min(case.regions))
        .map(|_| RegionId(rng.random_range(0..case.regions)))
        .collect();
    if query.is_empty() {
        query.push(RegionId(0));
    }
    let qt = TimePeriod::new(case.qt_start, case.qt_start + case.qt_len);
    (query, qt)
}

prop_compose! {
    fn arb_case()(
        seed in 0u64..u64::MAX / 2,
        objects in 1u64..40,
        regions in 1u32..16,
        query_regions in 1u32..16,
        k in 1usize..10,
        qt_start in -100.0f64..1100.0,
        qt_len in 0.0f64..600.0,
    ) -> Case {
        Case { seed, objects, regions, query_regions, k, qt_start, qt_len }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sharded-parallel TkPRQ/TkFRPQ equal the flat sequential oracle for
    /// every (shard count, thread count) pair.
    #[test]
    fn sharded_equals_flat_oracle(case in arb_case()) {
        let store = random_store(&case);
        let (query, qt) = random_query(&case);
        let want_prq = tk_prq(&store, &query, case.k, qt);
        let want_frpq = tk_frpq(&store, &query, case.k, qt);
        for shards in SHARD_COUNTS {
            let sharded = ShardedSemanticsStore::from_store(&store, shards);
            for threads in THREAD_COUNTS {
                let pool = WorkerPool::new(threads);
                prop_assert_eq!(
                    &tk_prq_sharded(&sharded, &query, case.k, qt, &pool),
                    &want_prq,
                    "TkPRQ diverged at shards={} threads={}", shards, threads
                );
                prop_assert_eq!(
                    &tk_frpq_sharded(&sharded, &query, case.k, qt, &pool),
                    &want_frpq,
                    "TkFRPQ diverged at shards={} threads={}", shards, threads
                );
            }
        }
    }

    /// Rebuilding the sharded store and re-running the parallel queries
    /// yields identical output (no run-to-run nondeterminism).
    #[test]
    fn sharded_queries_are_deterministic_across_runs(case in arb_case()) {
        let (query, qt) = random_query(&case);
        let run = || {
            let store = random_store(&case);
            let sharded = ShardedSemanticsStore::from_store(&store, 3);
            let pool = WorkerPool::new(4);
            (
                tk_prq_sharded(&sharded, &query, case.k, qt, &pool),
                tk_frpq_sharded(&sharded, &query, case.k, qt, &pool),
            )
        };
        prop_assert_eq!(run(), run());
    }
}
