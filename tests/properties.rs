//! Cross-crate property-based tests on pipeline invariants.

use indoor_semantics::mobility::merge_labels;
use indoor_semantics::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

prop_compose! {
    /// Random record-level label sequences with plausible time stamps.
    fn arb_labels()(n in 1usize..60, seed in 0u64..1000)
        -> (Vec<f64>, Vec<(RegionId, MobilityEvent)>)
    {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0.0;
        let mut times = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            t += rng.random_range(1.0..30.0);
            times.push(t);
            labels.push((
                RegionId(rng.random_range(0..5)),
                if rng.random_bool(0.5) { MobilityEvent::Stay } else { MobilityEvent::Pass },
            ));
        }
        (times, labels)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Label-and-merge: every record is covered exactly once, adjacent
    /// m-semantics differ, and periods are ordered.
    #[test]
    fn merge_labels_invariants((times, labels) in arb_labels()) {
        let ms = merge_labels(&times, &labels);
        prop_assert!(!ms.is_empty());
        for (t, lab) in times.iter().zip(&labels) {
            let covering: Vec<_> = ms.iter().filter(|m| m.period.contains(*t)).collect();
            prop_assert_eq!(covering.len(), 1);
            prop_assert_eq!((covering[0].region, covering[0].event), *lab);
        }
        for w in ms.windows(2) {
            prop_assert!(w[0].period.end < w[1].period.start);
            prop_assert!(w[0].region != w[1].region || w[0].event != w[1].event);
        }
    }

    /// MIWD over generated venues is a metric-like distance: non-negative,
    /// symmetric, and at least the Euclidean distance.
    #[test]
    fn miwd_metric_properties(seed in 0u64..50,
                              ax in 0.05f64..0.95, ay in 0.05f64..0.95,
                              bx in 0.05f64..0.95, by in 0.05f64..0.95,
                              pa in 0usize..12, pb in 0usize..12) {
        let venue = BuildingGenerator::small_office()
            .generate(&mut StdRng::seed_from_u64(seed))
            .unwrap();
        let parts = venue.partitions();
        let p1 = &parts[pa % parts.len()];
        let p2 = &parts[pb % parts.len()];
        let a = indoor_semantics::indoor::IndoorPoint::new(p1.floor, p1.rect.at(ax, ay));
        let b = indoor_semantics::indoor::IndoorPoint::new(p2.floor, p2.rect.at(bx, by));
        let d_ab = venue.miwd(&a, &b);
        let d_ba = venue.miwd(&b, &a);
        prop_assert!(d_ab >= 0.0);
        prop_assert!((d_ab - d_ba).abs() < 1e-6, "asymmetric: {d_ab} vs {d_ba}");
        if a.floor == b.floor {
            prop_assert!(d_ab + 1e-9 >= a.planar_distance(&b),
                "MIWD {d_ab} below Euclidean {}", a.planar_distance(&b));
        }
        // Identity of indiscernibles (same point).
        prop_assert!(venue.miwd(&a, &a).abs() < 1e-12);
    }

    /// The simulator's ground truth is always consistent: labels match the
    /// region containing the true position, and stays are destinations.
    #[test]
    fn simulator_truth_is_consistent(seed in 0u64..30) {
        let mut rng = StdRng::seed_from_u64(seed);
        let venue = BuildingGenerator::small_office().generate(&mut rng).unwrap();
        let sim = indoor_semantics::mobility::Simulator::new(
            &venue,
            SimulationConfig::quick(),
        );
        let traj = sim.simulate_object(0, &mut rng);
        for p in &traj.points {
            prop_assert_eq!(venue.region_at(&p.location), Some(p.region));
            if p.event == MobilityEvent::Stay {
                prop_assert!(venue.region(p.region).is_destination());
            }
        }
    }
}
