//! Filesystem helpers: atomic writes and whole-artifact read/write.

use std::fs;
use std::path::{Path, PathBuf};

use crate::error::PersistError;
use crate::frame::{decode_artifact, encode_artifact, ArtifactKind};

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Writes `bytes` to `path` atomically: the bytes land in a sibling
/// `*.tmp` file first and are renamed into place, so a crash mid-write
/// leaves either the old artifact or the new one — never a half-written
/// file at the final path.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let tmp = tmp_path(path);
    fs::write(&tmp, bytes).map_err(|e| PersistError::io(&tmp, "write", &e))?;
    fs::rename(&tmp, path).map_err(|e| PersistError::io(path, "rename", &e))?;
    Ok(())
}

/// Reads the whole file at `path`.
pub fn read_file(path: &Path) -> Result<Vec<u8>, PersistError> {
    fs::read(path).map_err(|e| PersistError::io(path, "read", &e))
}

/// Atomically writes a single-frame artifact (header + checksummed frame)
/// around `payload`.
pub fn write_artifact(path: &Path, kind: ArtifactKind, payload: &[u8]) -> Result<(), PersistError> {
    write_atomic(path, &encode_artifact(kind, payload))
}

/// Reads and validates a single-frame artifact, returning its payload.
pub fn read_artifact(path: &Path, kind: ArtifactKind) -> Result<Vec<u8>, PersistError> {
    let bytes = read_file(path)?;
    let payload = decode_artifact(&bytes, kind).map_err(|e| PersistError::codec(path, e))?;
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ism-codec-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn artifact_file_round_trips() {
        let path = scratch("roundtrip.ism");
        write_artifact(&path, ArtifactKind::TrainCheckpoint, b"payload").unwrap();
        assert_eq!(
            read_artifact(&path, ArtifactKind::TrainCheckpoint).unwrap(),
            b"payload"
        );
        // Overwrite goes through the same atomic path.
        write_artifact(&path, ArtifactKind::TrainCheckpoint, b"updated").unwrap();
        assert_eq!(
            read_artifact(&path, ArtifactKind::TrainCheckpoint).unwrap(),
            b"updated"
        );
        fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_a_typed_io_error() {
        let path = scratch("does-not-exist.ism");
        fs::remove_file(&path).ok();
        assert!(matches!(
            read_artifact(&path, ArtifactKind::EngineSnapshot),
            Err(PersistError::Io { op: "read", .. })
        ));
    }

    #[test]
    fn corrupt_file_is_a_typed_codec_error() {
        let path = scratch("corrupt.ism");
        write_artifact(&path, ArtifactKind::EngineSnapshot, b"payload").unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_artifact(&path, ArtifactKind::EngineSnapshot),
            Err(PersistError::Codec { .. })
        ));
        fs::remove_file(&path).ok();
    }
}
