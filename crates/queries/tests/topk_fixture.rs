//! Deterministic fixture tests: TkPRQ / TkFRPQ agree with a brute-force
//! scan, return exactly `k` results, and rank stably across runs.

use ism_indoor::RegionId;
use ism_mobility::{MobilityEvent, MobilitySemantics, TimePeriod};
use ism_queries::{
    tk_frpq, tk_frpq_sharded, tk_prq, tk_prq_sharded, SemanticsStore, ShardedSemanticsStore,
};
use ism_runtime::WorkerPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

const NUM_OBJECTS: u64 = 40;
const NUM_REGIONS: u32 = 12;

/// A randomized-but-seeded store: 40 objects, each a timeline of stays and
/// passes over 12 regions spanning [0, 1000].
fn fixture_store(seed: u64) -> SemanticsStore {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = SemanticsStore::new();
    for object in 0..NUM_OBJECTS {
        let mut t = rng.random_range(0.0..50.0);
        let mut timeline = Vec::new();
        while t < 1000.0 {
            let duration = rng.random_range(5.0..60.0);
            timeline.push(MobilitySemantics {
                region: RegionId(rng.random_range(0..NUM_REGIONS)),
                period: TimePeriod::new(t, t + duration),
                event: if rng.random_bool(0.6) {
                    MobilityEvent::Stay
                } else {
                    MobilityEvent::Pass
                },
            });
            t += duration + rng.random_range(1.0..10.0);
        }
        store.insert(object, timeline);
    }
    store
}

/// Brute-force TkPRQ: count qualifying stays per region with nested loops.
fn brute_prq(
    store: &SemanticsStore,
    query: &[RegionId],
    k: usize,
    qt: &TimePeriod,
) -> Vec<(RegionId, usize)> {
    let mut counts: BTreeMap<RegionId, usize> = BTreeMap::new();
    for (_, timeline) in store.iter() {
        for ms in timeline {
            if ms.event == MobilityEvent::Stay
                && ms.period.overlaps(qt)
                && query.contains(&ms.region)
            {
                *counts.entry(ms.region).or_insert(0) += 1;
            }
        }
    }
    let mut ranked: Vec<(RegionId, usize)> = counts.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(k);
    ranked
}

/// Brute-force TkFRPQ: per object, the set of stayed regions; count each
/// unordered pair once per object.
fn brute_frpq(
    store: &SemanticsStore,
    query: &[RegionId],
    k: usize,
    qt: &TimePeriod,
) -> Vec<((RegionId, RegionId), usize)> {
    let mut counts: BTreeMap<(RegionId, RegionId), usize> = BTreeMap::new();
    for (_, timeline) in store.iter() {
        let visited: BTreeSet<RegionId> = timeline
            .iter()
            .filter(|ms| {
                ms.event == MobilityEvent::Stay
                    && ms.period.overlaps(qt)
                    && query.contains(&ms.region)
            })
            .map(|ms| ms.region)
            .collect();
        let visited: Vec<RegionId> = visited.into_iter().collect();
        for i in 0..visited.len() {
            for j in i + 1..visited.len() {
                *counts.entry((visited[i], visited[j])).or_insert(0) += 1;
            }
        }
    }
    let mut ranked: Vec<((RegionId, RegionId), usize)> = counts.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(k);
    ranked
}

#[test]
fn tk_prq_matches_brute_force_and_returns_exactly_k() {
    let store = fixture_store(0xF1C7);
    let query: Vec<RegionId> = (0..NUM_REGIONS).map(RegionId).collect();
    for (qt_start, qt_end, k) in [(0.0, 1000.0, 5), (100.0, 400.0, 3), (800.0, 950.0, 7)] {
        let qt = TimePeriod::new(qt_start, qt_end);
        let got = tk_prq(&store, &query, k, qt);
        let want = brute_prq(&store, &query, k, &qt);
        assert_eq!(
            got, want,
            "TkPRQ disagrees with brute force for qt=[{qt_start},{qt_end}]"
        );
        // With 40 objects over 12 regions every window has >= k active regions.
        assert_eq!(got.len(), k, "TkPRQ must return exactly k results");
        // Ranked by count descending, ties by region id ascending.
        for w in got.windows(2) {
            assert!(
                w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0),
                "unstable ranking: {:?} before {:?}",
                w[0],
                w[1]
            );
        }
    }
}

#[test]
fn tk_frpq_matches_brute_force_and_returns_exactly_k() {
    let store = fixture_store(0xF1C7);
    let query: Vec<RegionId> = (0..NUM_REGIONS).map(RegionId).collect();
    for (qt_start, qt_end, k) in [(0.0, 1000.0, 5), (200.0, 600.0, 4)] {
        let qt = TimePeriod::new(qt_start, qt_end);
        let got = tk_frpq(&store, &query, k, qt);
        let want = brute_frpq(&store, &query, k, &qt);
        assert_eq!(
            got, want,
            "TkFRPQ disagrees with brute force for qt=[{qt_start},{qt_end}]"
        );
        assert_eq!(got.len(), k, "TkFRPQ must return exactly k results");
        for w in got.windows(2) {
            assert!(
                w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0),
                "unstable ranking: {:?} before {:?}",
                w[0],
                w[1]
            );
        }
    }
}

#[test]
fn restricted_query_set_excludes_other_regions() {
    let store = fixture_store(0xF1C7);
    let query = vec![RegionId(0), RegionId(3), RegionId(8)];
    let qt = TimePeriod::new(0.0, 1000.0);
    let top = tk_prq(&store, &query, 10, qt);
    assert!(top.iter().all(|(r, _)| query.contains(r)));
    assert_eq!(top, brute_prq(&store, &query, 10, &qt));
    let pairs = tk_frpq(&store, &query, 10, qt);
    assert!(pairs
        .iter()
        .all(|((a, b), _)| query.contains(a) && query.contains(b) && a < b));
}

#[test]
fn sharded_engine_matches_brute_force_on_fixture() {
    let store = fixture_store(0xF1C7);
    let query: Vec<RegionId> = (0..NUM_REGIONS).map(RegionId).collect();
    let pool = WorkerPool::new(4);
    for shards in [1, 3, 8] {
        let sharded = ShardedSemanticsStore::from_store(&store, shards);
        for (qt_start, qt_end, k) in [(0.0, 1000.0, 5), (100.0, 400.0, 3), (800.0, 950.0, 7)] {
            let qt = TimePeriod::new(qt_start, qt_end);
            assert_eq!(
                tk_prq_sharded(&sharded, &query, k, qt, &pool),
                brute_prq(&store, &query, k, &qt),
                "sharded TkPRQ diverged (shards={shards}, qt=[{qt_start},{qt_end}])"
            );
            assert_eq!(
                tk_frpq_sharded(&sharded, &query, k, qt, &pool),
                brute_frpq(&store, &query, k, &qt),
                "sharded TkFRPQ diverged (shards={shards}, qt=[{qt_start},{qt_end}])"
            );
        }
    }
}

#[test]
fn ranking_is_stable_across_runs() {
    let query: Vec<RegionId> = (0..NUM_REGIONS).map(RegionId).collect();
    let qt = TimePeriod::new(0.0, 1000.0);
    let a_store = fixture_store(0xF1C7);
    let b_store = fixture_store(0xF1C7);
    assert_eq!(
        tk_prq(&a_store, &query, 6, qt),
        tk_prq(&b_store, &query, 6, qt)
    );
    assert_eq!(
        tk_frpq(&a_store, &query, 6, qt),
        tk_frpq(&b_store, &query, 6, qt)
    );
}
