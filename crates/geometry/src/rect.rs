//! Axis-aligned rectangles used to model indoor partitions.

use crate::Point2;
use serde::{Deserialize, Serialize};

/// An axis-aligned rectangle `[min.x, max.x] × [min.y, max.y]`.
///
/// Indoor partitions (rooms, hallway segments) are modelled as axis-aligned
/// rectangles; semantic regions are unions of partitions. Degenerate
/// rectangles (zero width or height) are permitted and have zero area.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point2,
    /// Upper-right corner.
    pub max: Point2,
}

impl Rect {
    /// Creates a rectangle from two opposite corners, normalising the order.
    #[inline]
    pub fn new(a: Point2, b: Point2) -> Self {
        Rect {
            min: Point2::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point2::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Creates a rectangle from `(x, y)` of the lower-left corner plus extent.
    #[inline]
    pub fn from_origin_size(x: f64, y: f64, width: f64, height: f64) -> Self {
        debug_assert!(width >= 0.0 && height >= 0.0);
        Rect {
            min: Point2::new(x, y),
            max: Point2::new(x + width, y + height),
        }
    }

    /// Rectangle width (non-negative).
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Rectangle height (non-negative).
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area of the rectangle.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point2 {
        Point2::new(
            (self.min.x + self.max.x) * 0.5,
            (self.min.y + self.max.y) * 0.5,
        )
    }

    /// Whether `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Whether the two rectangles overlap (sharing only a boundary counts).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Intersection rectangle, or `None` when the rectangles are disjoint.
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let min = Point2::new(self.min.x.max(other.min.x), self.min.y.max(other.min.y));
        let max = Point2::new(self.max.x.min(other.max.x), self.max.y.min(other.max.y));
        if min.x <= max.x && min.y <= max.y {
            Some(Rect { min, max })
        } else {
            None
        }
    }

    /// Whether the interiors overlap with strictly positive area.
    #[inline]
    pub fn overlaps_interior(&self, other: &Rect) -> bool {
        self.min.x < other.max.x
            && other.min.x < self.max.x
            && self.min.y < other.max.y
            && other.min.y < self.max.y
    }

    /// Smallest rectangle containing both operands.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: Point2::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point2::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// The point of the rectangle closest to `p` (i.e. `p` clamped).
    #[inline]
    pub fn clamp_point(&self, p: Point2) -> Point2 {
        Point2::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// Euclidean distance from `p` to the rectangle (zero if inside).
    #[inline]
    pub fn distance_to_point(&self, p: Point2) -> f64 {
        self.clamp_point(p).distance(p)
    }

    /// Point at fractional coordinates `(u, v) ∈ [0,1]²` inside the rectangle.
    #[inline]
    pub fn at(&self, u: f64, v: f64) -> Point2 {
        Point2::new(
            self.min.x + self.width() * u,
            self.min.y + self.height() * v,
        )
    }

    /// Corners in counter-clockwise order starting from `min`.
    #[inline]
    pub fn corners(&self) -> [Point2; 4] {
        [
            self.min,
            Point2::new(self.max.x, self.min.y),
            self.max,
            Point2::new(self.min.x, self.max.y),
        ]
    }

    /// Rectangle grown by `margin` on every side.
    #[inline]
    pub fn inflate(&self, margin: f64) -> Rect {
        Rect {
            min: Point2::new(self.min.x - margin, self.min.y - margin),
            max: Point2::new(self.max.x + margin, self.max.y + margin),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(Point2::new(x0, y0), Point2::new(x1, y1))
    }

    #[test]
    fn construction_normalises_corners() {
        let a = Rect::new(Point2::new(2.0, 3.0), Point2::new(0.0, 1.0));
        assert_eq!(a.min, Point2::new(0.0, 1.0));
        assert_eq!(a.max, Point2::new(2.0, 3.0));
        assert_eq!(a.width(), 2.0);
        assert_eq!(a.height(), 2.0);
    }

    #[test]
    fn area_and_center() {
        let a = r(0.0, 0.0, 4.0, 2.0);
        assert_eq!(a.area(), 8.0);
        assert_eq!(a.center(), Point2::new(2.0, 1.0));
    }

    #[test]
    fn containment() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        assert!(a.contains(Point2::new(0.5, 0.5)));
        assert!(a.contains(Point2::new(1.0, 1.0))); // boundary
        assert!(!a.contains(Point2::new(1.1, 0.5)));
    }

    #[test]
    fn intersection_cases() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(1.0, 1.0, 3.0, 3.0);
        let c = r(5.0, 5.0, 6.0, 6.0);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b), Some(r(1.0, 1.0, 2.0, 2.0)));
        assert!(!a.intersects(&c));
        assert_eq!(a.intersection(&c), None);
        // Touching rectangles intersect with zero-area result.
        let d = r(2.0, 0.0, 3.0, 2.0);
        assert!(a.intersects(&d));
        assert!(!a.overlaps_interior(&d));
        assert_eq!(a.intersection(&d).unwrap().area(), 0.0);
    }

    #[test]
    fn union_covers_both() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(2.0, -1.0, 3.0, 0.5);
        let u = a.union(&b);
        assert_eq!(u, r(0.0, -1.0, 3.0, 1.0));
    }

    #[test]
    fn distance_to_point() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        assert_eq!(a.distance_to_point(Point2::new(0.5, 0.5)), 0.0);
        assert_eq!(a.distance_to_point(Point2::new(2.0, 1.0)), 1.0);
        assert!((a.distance_to_point(Point2::new(4.0, 5.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn corners_ccw() {
        let a = r(0.0, 0.0, 2.0, 1.0);
        let c = a.corners();
        // Shoelace area of CCW corner loop equals rect area.
        let mut s = 0.0;
        for i in 0..4 {
            s += c[i].cross(c[(i + 1) % 4]);
        }
        assert!((s * 0.5 - a.area()).abs() < 1e-12);
    }

    #[test]
    fn inflate_grows() {
        let a = r(0.0, 0.0, 1.0, 1.0).inflate(0.5);
        assert_eq!(a, r(-0.5, -0.5, 1.5, 1.5));
    }
}
