//! Bounded submission queue for streaming workloads.
//!
//! Streaming producers (the `ism-engine` ingest sessions) accept items one
//! at a time and execute them on a [`WorkerPool`] two ways: pipelined
//! consumers peel individual items off the front ([`pop_front`]) to hand
//! to idle workers as they arrive, and when no worker keeps up the queue
//! fills and hands the caller a *drained batch* to fan out. The bound is
//! the memory contract either way — at most `capacity`
//! submitted-but-unexecuted items are ever materialised.
//!
//! [`pop_front`]: SubmissionQueue::pop_front
//!
//! Every item is stamped with a monotonically increasing **global index**
//! at submission time. Deterministic pipelines derive per-item RNG seeds
//! from that index (see `ism_c2mn::sequence_seed`), so how items are
//! grouped into batches — one by one, uneven chunks, everything at once —
//! is unobservable in the output.
//!
//! [`WorkerPool`]: crate::WorkerPool

/// A bounded FIFO buffer stamping each item with a global index.
///
/// Not a concurrent queue: one producer owns it and drains it into a
/// worker pool. The bound caps buffered items, not total throughput.
#[derive(Debug, Clone)]
pub struct SubmissionQueue<T> {
    items: std::collections::VecDeque<(u64, T)>,
    capacity: usize,
    next_index: u64,
}

impl<T> SubmissionQueue<T> {
    /// Creates a queue holding at most `capacity` items, stamping the
    /// first item with index 0.
    ///
    /// A `capacity` of 0 is clamped to 1 — a zero-capacity queue could
    /// never accept a push, so the clamp turns the degenerate
    /// configuration into the smallest useful one: every push fills the
    /// queue and hands back a one-item batch ([`push`] never returns
    /// `None`). Callers sizing the queue from untrusted configuration get
    /// strict per-item execution rather than an error path.
    ///
    /// [`push`]: SubmissionQueue::push
    pub fn new(capacity: usize) -> Self {
        SubmissionQueue::starting_at(capacity, 0)
    }

    /// Creates a queue whose first item is stamped `first_index` —
    /// continuing the global numbering of an earlier queue or session.
    /// The capacity clamp of [`new`](SubmissionQueue::new) applies.
    pub fn starting_at(capacity: usize, first_index: u64) -> Self {
        let capacity = capacity.max(1);
        SubmissionQueue {
            items: std::collections::VecDeque::with_capacity(capacity),
            capacity,
            next_index: first_index,
        }
    }

    /// The maximum number of buffered items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently buffered (submitted but not yet drained).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no items are buffered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The index the next submitted item will be stamped with.
    pub fn next_index(&self) -> u64 {
        self.next_index
    }

    /// Submits one item, stamping it with the next global index.
    ///
    /// Returns `Some(batch)` when the submission fills the queue: the
    /// caller must execute the drained `(index, item)` batch (in index
    /// order) before the queue accepts further memory. Returns `None`
    /// while the queue still has room.
    #[must_use = "a full queue hands back a batch that must be executed"]
    pub fn push(&mut self, item: T) -> Option<Vec<(u64, T)>> {
        let index = self.next_index;
        self.next_index += 1;
        self.items.push_back((index, item));
        if self.items.len() >= self.capacity {
            Some(self.drain())
        } else {
            None
        }
    }

    /// Removes and returns the oldest buffered item with its stamped
    /// index, or `None` when nothing is buffered.
    ///
    /// The pipelined-ingest hook: a consumer with an idle worker peels one
    /// item off the front and hands it over immediately instead of waiting
    /// for the queue to fill. Indices stay contiguous with batches drained
    /// before or after.
    pub fn pop_front(&mut self) -> Option<(u64, T)> {
        self.items.pop_front()
    }

    /// Drains every buffered item as an `(index, item)` batch in index
    /// order (empty when nothing is buffered).
    pub fn drain(&mut self) -> Vec<(u64, T)> {
        std::mem::take(&mut self.items).into()
    }
}

#[cfg(test)]
mod tests {
    use super::SubmissionQueue;

    #[test]
    fn capacity_clamps_to_one() {
        let mut q = SubmissionQueue::new(0);
        assert_eq!(q.capacity(), 1);
        // Capacity 1 drains on every push.
        assert_eq!(q.push('a'), Some(vec![(0, 'a')]));
        assert_eq!(q.push('b'), Some(vec![(1, 'b')]));
    }

    #[test]
    fn indices_are_contiguous_across_batches() {
        let mut q = SubmissionQueue::new(3);
        let mut seen = Vec::new();
        for i in 0..8 {
            if let Some(batch) = q.push(i) {
                assert_eq!(batch.len(), 3);
                seen.extend(batch);
            }
        }
        seen.extend(q.drain());
        let indices: Vec<u64> = seen.iter().map(|&(idx, _)| idx).collect();
        assert_eq!(indices, (0..8).collect::<Vec<_>>());
        assert!(seen.iter().all(|&(idx, item)| idx == item as u64));
        assert!(q.is_empty());
        assert_eq!(q.next_index(), 8);
    }

    #[test]
    fn starting_at_continues_numbering() {
        let mut q = SubmissionQueue::starting_at(2, 40);
        assert_eq!(q.next_index(), 40);
        assert!(q.push("x").is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.push("y"), Some(vec![(40, "x"), (41, "y")]));
        assert!(q.is_empty());
        assert_eq!(q.next_index(), 42);
    }

    #[test]
    fn drain_of_empty_queue_is_empty() {
        let mut q: SubmissionQueue<u8> = SubmissionQueue::new(4);
        assert!(q.drain().is_empty());
    }

    #[test]
    fn capacity_one_drains_on_every_push() {
        let mut q = SubmissionQueue::new(1);
        assert_eq!(q.capacity(), 1);
        for i in 0u64..5 {
            assert_eq!(q.push(i), Some(vec![(i, i)]));
            assert!(q.is_empty());
            assert_eq!(q.next_index(), i + 1);
        }
    }

    #[test]
    fn drain_on_exact_fill_hands_back_exactly_capacity() {
        // The push that reaches exactly `capacity` items drains — never a
        // batch larger or smaller than the fill, never a leftover item.
        for capacity in [2, 3, 5] {
            let mut q = SubmissionQueue::new(capacity);
            for round in 0..3u64 {
                for i in 0..capacity as u64 - 1 {
                    assert_eq!(q.push(()), None, "capacity {capacity} round {round} i {i}");
                    assert_eq!(q.len(), i as usize + 1);
                }
                let batch = q.push(()).expect("the filling push drains");
                assert_eq!(batch.len(), capacity, "capacity {capacity}");
                assert!(q.is_empty());
                let first = batch[0].0;
                assert!(batch
                    .iter()
                    .enumerate()
                    .all(|(i, &(idx, ()))| idx == first + i as u64));
            }
        }
    }

    #[test]
    fn global_indices_are_continuous_across_sessions() {
        // Session 2 resumes the numbering where session 1 stopped — even
        // when session 1 left nothing buffered — so per-index derived
        // seeds never collide or skip.
        let mut session1 = SubmissionQueue::new(3);
        let mut all = Vec::new();
        for i in 0..4u64 {
            if let Some(batch) = session1.push(i) {
                all.extend(batch);
            }
        }
        all.extend(session1.drain());
        let mut session2 = SubmissionQueue::starting_at(2, session1.next_index());
        for i in 4..9u64 {
            if let Some(batch) = session2.push(i) {
                all.extend(batch);
            }
        }
        all.extend(session2.drain());
        let indices: Vec<u64> = all.iter().map(|&(idx, _)| idx).collect();
        assert_eq!(indices, (0..9).collect::<Vec<_>>());
        assert_eq!(session2.next_index(), 9);
    }

    #[test]
    fn pop_front_interleaves_with_batch_drains() {
        // Pipelined consumption: peeling items off the front keeps index
        // order and composes with fill-triggered batch drains.
        let mut q = SubmissionQueue::new(3);
        assert_eq!(q.pop_front(), None);
        assert!(q.push('a').is_none());
        assert!(q.push('b').is_none());
        assert_eq!(q.pop_front(), Some((0, 'a')));
        assert_eq!(q.len(), 1);
        // Refill: 'b' is still buffered, so two more pushes fill it.
        assert!(q.push('c').is_none());
        let batch = q.push('d').expect("fill drains");
        assert_eq!(batch, vec![(1, 'b'), (2, 'c'), (3, 'd')]);
        assert_eq!(q.pop_front(), None);
        assert_eq!(q.next_index(), 4);
    }
}
