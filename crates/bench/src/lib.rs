//! Shared harness for the paper-reproduction experiments.
//!
//! Every table and figure of the paper's evaluation (§V) has a binary in
//! `src/bin/` built on these helpers: dataset construction, method
//! training/labeling, accuracy evaluation, query-precision evaluation, and
//! aligned table printing.
//!
//! **Scaling.** The paper's experiments ran on a 10-core Xeon over five
//! million records with `M = 800` MCMC samples. The defaults here are
//! scaled down to finish in minutes on a laptop; set the environment
//! variables `REPRO_OBJECTS`, `REPRO_MCMC_M`, `REPRO_MAX_ITER`, `REPRO_K`
//! to approach paper scale (`REPRO_THREADS` / `REPRO_SHARDS` tune worker
//! and store-shard counts without changing any result). The *shape* of the
//! results (method ranking, trends across sweeps) is what the harness
//! reproduces; absolute numbers depend on scale.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use ism_baselines::{HmmDc, HmmDcConfig, SapConfig, SapDa, SapDv, Smot, SmotConfig};
use ism_c2mn::{
    sequence_seed, BatchAnnotator, C2mn, C2mnConfig, FirstConfigured, ModelStructure, Trainer,
};
use ism_eval::{top_k_precision, AccuracyAccumulator, LabelAccuracy};
use ism_indoor::{BuildingGenerator, IndoorSpace, RegionId, RegionKind};
use ism_mobility::{
    merge_labels, Dataset, LabeledSequence, MobilityEvent, PositioningConfig, PositioningRecord,
    PreprocessConfig, SimulationConfig, TimePeriod,
};
use ism_queries::{tk_frpq_sharded, tk_prq_sharded, ShardedSemanticsStore, ShardedStoreBuilder};
use ism_runtime::WorkerPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Experiment scale, overridable through environment variables.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Objects simulated for each dataset (`REPRO_OBJECTS`).
    pub objects: usize,
    /// MCMC samples per learning step (`REPRO_MCMC_M`).
    pub mcmc_m: usize,
    /// Outer iterations of Algorithm 1 (`REPRO_MAX_ITER`).
    pub max_iter: usize,
    /// Top-k size for the query experiments (`REPRO_K`).
    pub k: usize,
    /// Worker threads for batch annotation (`REPRO_THREADS`); defaults to
    /// the machine's available parallelism. Thread count never changes
    /// results — see [`BatchAnnotator`]'s determinism contract.
    pub threads: usize,
    /// Shards of the semantics stores behind the query experiments
    /// (`REPRO_SHARDS`). Shard count never changes query results — see
    /// the `ism-queries` determinism contract.
    pub shards: usize,
}

impl Scale {
    /// Reads the scale from the environment, with laptop defaults.
    pub fn from_env() -> Self {
        let get = |name: &str, default: usize| -> usize {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        let default_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        Scale {
            objects: get("REPRO_OBJECTS", 60),
            mcmc_m: get("REPRO_MCMC_M", 10),
            max_iter: get("REPRO_MAX_ITER", 6),
            k: get("REPRO_K", 10),
            threads: get("REPRO_THREADS", default_threads).max(1),
            shards: get("REPRO_SHARDS", 8).max(1),
        }
    }

    /// The worker pool query evaluation fans out over.
    pub fn pool(&self) -> WorkerPool {
        WorkerPool::new(self.threads)
    }

    /// The C2MN configuration at this scale (real-data profile).
    pub fn c2mn_config(&self) -> C2mnConfig {
        C2mnConfig {
            max_iter: self.max_iter,
            mcmc_m: self.mcmc_m,
            mcmc_burn_in: 1,
            inner_lbfgs_iters: 5,
            uncertainty_radius: 10.0,
            ..C2mnConfig::paper_real()
        }
    }
}

/// Splits long sequences into chunks so segment-window costs stay bounded.
///
/// `chunks(max_len)` can leave a final chunk of a single record, which is
/// too short to label as a sequence. Dropping it (the old behaviour)
/// silently removed records from every accuracy denominator; instead the
/// tail is folded into the preceding chunk, so chunks hold between 2 and
/// `max_len + 1` records and every record of a labelable (≥ 2 records)
/// sequence is conserved.
pub fn chunk_sequences(seqs: &[LabeledSequence], max_len: usize) -> Vec<LabeledSequence> {
    let max_len = max_len.max(2);
    let mut out = Vec::new();
    for s in seqs {
        let first_of_seq = out.len();
        for chunk in s.records.chunks(max_len) {
            out.push(LabeledSequence {
                object_id: s.object_id,
                records: chunk.to_vec(),
            });
        }
        if out.len() > first_of_seq && out[out.len() - 1].records.len() < 2 {
            if out.len() - first_of_seq >= 2 {
                // Fold the 1-record tail into the previous chunk.
                let tail = out.pop().unwrap();
                out.last_mut().unwrap().records.extend(tail.records);
            } else {
                // A 1-record sequence has no previous chunk and cannot be
                // labelled as a sequence at all.
                out.pop();
            }
        }
    }
    out
}

/// Builds the "mall" dataset standing in for the paper's real Wi-Fi data:
/// a generated 7-floor mall, Wi-Fi-like noise, η/ψ preprocessing.
pub fn mall_dataset(scale: &Scale, seed: u64) -> (IndoorSpace, Dataset) {
    let mut rng = StdRng::seed_from_u64(seed);
    let space = BuildingGenerator::mall().generate(&mut rng).unwrap();
    let mut dataset = Dataset::generate(
        "mall",
        &space,
        SimulationConfig::paper(),
        PositioningConfig::wifi_mall(),
        Some(PreprocessConfig::default()),
        scale.objects,
        &mut rng,
    );
    dataset.sequences = chunk_sequences(&dataset.sequences, 200);
    (space, dataset)
}

/// Builds one synthetic dataset over a Vita-like building for a `(T, μ)`
/// grid point (Table V).
pub fn synthetic_dataset(
    space: &IndoorSpace,
    t: f64,
    mu: f64,
    objects: usize,
    seed: u64,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dataset = Dataset::generate(
        &format!("T{}mu{}", t as u32, mu as u32),
        space,
        SimulationConfig::paper(),
        PositioningConfig::synthetic(t, mu),
        None,
        objects,
        &mut rng,
    );
    dataset.sequences = chunk_sequences(&dataset.sequences, 250);
    dataset
}

/// Generates the Vita-like venue of the synthetic experiments.
pub fn vita_space(seed: u64) -> IndoorSpace {
    BuildingGenerator::vita_like()
        .generate(&mut StdRng::seed_from_u64(seed))
        .unwrap()
}

/// A labeling closure: per-record (region, event) labels from a p-sequence.
pub type Labeler<'a> =
    Box<dyn Fn(&[PositioningRecord], &mut StdRng) -> Vec<(RegionId, MobilityEvent)> + 'a>;

enum LabelerKind<'a> {
    /// An arbitrary per-sequence closure (the non-C2MN baselines).
    PerSequence(Labeler<'a>),
    /// A trained C2MN decoded through the parallel [`BatchAnnotator`].
    Batch { model: &'a C2mn<'a>, threads: usize },
}

/// A method under evaluation: a name plus a labeling strategy.
pub struct Method<'a> {
    /// Display name matching the paper's tables.
    pub name: &'static str,
    kind: LabelerKind<'a>,
}

impl<'a> Method<'a> {
    /// Creates a method from a name and labeling closure.
    pub fn new<F>(name: &'static str, labeler: F) -> Self
    where
        F: Fn(&[PositioningRecord], &mut StdRng) -> Vec<(RegionId, MobilityEvent)> + 'a,
    {
        Method {
            name,
            kind: LabelerKind::PerSequence(Box::new(labeler)),
        }
    }

    /// Creates a method decoding a trained C2MN on `threads` workers.
    pub fn batched(name: &'static str, model: &'a C2mn<'a>, threads: usize) -> Self {
        Method {
            name,
            kind: LabelerKind::Batch { model, threads },
        }
    }

    /// Labels a whole batch of sequences; sequence `i` uses an RNG seeded
    /// from `sequence_seed(seed, i)`.
    ///
    /// Batched methods shard the work across their worker pool; closure
    /// methods run sequentially. Both derive per-sequence RNGs the same
    /// way, so a batched method returns exactly what its sequential
    /// counterpart would.
    pub fn label_all(
        &self,
        sequences: &[Vec<PositioningRecord>],
        seed: u64,
    ) -> Vec<Vec<(RegionId, MobilityEvent)>> {
        match &self.kind {
            LabelerKind::Batch { model, threads } => {
                BatchAnnotator::new(model, *threads, seed).label_batch(sequences)
            }
            LabelerKind::PerSequence(labeler) => sequences
                .iter()
                .enumerate()
                .map(|(i, records)| {
                    let mut rng = StdRng::seed_from_u64(sequence_seed(seed, i));
                    labeler(records, &mut rng)
                })
                .collect(),
        }
    }
}

/// Collects each test sequence's positioning records for batch labeling.
pub fn positioning_batch(test: &[LabeledSequence]) -> Vec<Vec<PositioningRecord>> {
    test.iter().map(|s| s.positioning().collect()).collect()
}

/// The C2MN structural variants in the paper's table order.
pub const C2MN_VARIANTS: [(&str, ModelStructure); 6] = [
    ("CMN", ModelStructure::cmn()),
    ("C2MN/Tran", ModelStructure::no_transitions()),
    ("C2MN/Syn", ModelStructure::no_synchronizations()),
    ("C2MN/ES", ModelStructure::no_event_segmentation()),
    ("C2MN/SS", ModelStructure::no_space_segmentation()),
    ("C2MN", ModelStructure::full()),
];

/// Trains the C2MN family on `train`, returning `(name, model)` pairs.
///
/// Each variant trains through a [`Trainer`] keyed by `seed` with its
/// per-sequence MCMC sampling fanned out over `pool` — thread count never
/// changes the learned weights (the trainer's determinism contract), so
/// `REPRO_THREADS` scales training wall-clock without moving any reported
/// number.
pub fn train_c2mn_family<'a>(
    space: &'a IndoorSpace,
    train: &[LabeledSequence],
    base: &C2mnConfig,
    variants: &[(&'static str, ModelStructure)],
    seed: u64,
    pool: &WorkerPool,
) -> Vec<(&'static str, C2mn<'a>)> {
    variants
        .iter()
        .map(|(name, structure)| {
            let config = base.clone().with_structure(*structure);
            let outcome = Trainer::new(space, config)
                .seed(seed)
                .pool(pool)
                .run(train)
                .expect("training data");
            (*name, outcome.model)
        })
        .collect()
}

/// Builds all ten methods of Table IV: the four non-C2MN baselines plus
/// the six C2MN structures (pre-trained, decoded on `threads` workers).
pub fn all_methods<'a>(
    space: &'a IndoorSpace,
    train: &'a [LabeledSequence],
    family: &'a [(&'static str, C2mn<'a>)],
    threads: usize,
) -> Vec<Method<'a>> {
    let mut methods: Vec<Method<'a>> = Vec::new();
    let smot = Smot::new(space, SmotConfig::default());
    methods.push(Method::new("SMoT", move |r, _| smot.label(r)));
    let hmm_dc = HmmDc::train(space, train, HmmDcConfig::default());
    methods.push(Method::new("HMM+DC", move |r, _| hmm_dc.label(r)));
    let sapdv = SapDv::new(space, SapConfig::default());
    methods.push(Method::new("SAPDV", move |r, _| sapdv.label(r)));
    let sapda = SapDa::new(space, SapConfig::default());
    methods.push(Method::new("SAPDA", move |r, _| sapda.label(r)));
    for (name, model) in family {
        methods.push(Method::batched(name, model, threads));
    }
    methods
}

/// Evaluates one method's labeling accuracy over the test sequences
/// (batched: C2MN methods decode in parallel).
pub fn evaluate_accuracy(
    method: &Method<'_>,
    test: &[LabeledSequence],
    seed: u64,
) -> LabelAccuracy {
    let sequences = positioning_batch(test);
    let all_labels = method.label_all(&sequences, seed);
    let mut acc = AccuracyAccumulator::new();
    for (labels, seq) in all_labels.iter().zip(test) {
        acc.add(labels, seq.truth_labels());
    }
    acc.finish()
}

/// Builds a [`ShardedSemanticsStore`] over `shards` shards from a method's
/// annotations of the test set.
///
/// C2MN methods decode *and shard* in parallel
/// ([`BatchAnnotator::annotate_into_store`] — no intermediate flat
/// collection); closure baselines label sequentially and shard through a
/// [`ShardedStoreBuilder`]. Both derive per-sequence RNGs from
/// [`sequence_seed`]`(seed, i)` and tag entries with their item index, so
/// the store content is independent of thread and shard count.
pub fn annotate_store(
    method: &Method<'_>,
    test: &[LabeledSequence],
    seed: u64,
    shards: usize,
) -> ShardedSemanticsStore {
    let sequences = positioning_batch(test);
    match &method.kind {
        LabelerKind::Batch { model, threads } => {
            let object_ids: Vec<u64> = test.iter().map(|s| s.object_id).collect();
            BatchAnnotator::new(model, *threads, seed).annotate_into_store(
                &sequences,
                &object_ids,
                shards,
            )
        }
        LabelerKind::PerSequence(_) => {
            let all_labels = method.label_all(&sequences, seed);
            let mut builder = ShardedStoreBuilder::new(shards);
            for ((records, labels), seq) in sequences.iter().zip(&all_labels).zip(test) {
                let times: Vec<f64> = records.iter().map(|r| r.t).collect();
                builder.insert(seq.object_id, merge_labels(&times, labels));
            }
            builder.build()
        }
    }
}

/// Ground-truth store from the test labels themselves, sharded like
/// [`annotate_store`] output.
pub fn truth_store(test: &[LabeledSequence], shards: usize) -> ShardedSemanticsStore {
    let mut builder = ShardedStoreBuilder::new(shards);
    for seq in test {
        let times: Vec<f64> = seq.records.iter().map(|r| r.record.t).collect();
        let labels: Vec<(RegionId, MobilityEvent)> = seq.truth_labels().collect();
        builder.insert(seq.object_id, merge_labels(&times, &labels));
    }
    builder.build()
}

/// Average TkPRQ and TkFRPQ precision of a store against the ground truth
/// over `trials` random query sets within `qt_minutes`-long windows,
/// evaluating both stores' queries on `pool`.
#[allow(clippy::too_many_arguments)]
pub fn query_precision(
    space: &IndoorSpace,
    store: &ShardedSemanticsStore,
    truth: &ShardedSemanticsStore,
    k: usize,
    qt_minutes: f64,
    trials: usize,
    seed: u64,
    pool: &WorkerPool,
) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let shops: Vec<RegionId> = space
        .regions()
        .iter()
        .filter(|r| r.kind == RegionKind::Shop)
        .map(|r| r.id)
        .collect();
    let horizon = SimulationConfig::paper().duration;
    let mut prq_sum = 0.0;
    let mut frpq_sum = 0.0;
    for _ in 0..trials {
        // Random query set: half of the shop regions (paper: 101 of 202).
        let mut q = shops.clone();
        for i in (1..q.len()).rev() {
            let j = rng.random_range(0..=i);
            q.swap(i, j);
        }
        q.truncate((shops.len() / 2).max(1));
        let start = rng.random_range(0.0..(horizon - qt_minutes * 60.0).max(1.0));
        let qt = TimePeriod::new(start, start + qt_minutes * 60.0);

        let true_prq: Vec<RegionId> = tk_prq_sharded(truth, &q, k, qt, pool)
            .into_iter()
            .map(|x| x.0)
            .collect();
        let got_prq: Vec<RegionId> = tk_prq_sharded(store, &q, k, qt, pool)
            .into_iter()
            .map(|x| x.0)
            .collect();
        prq_sum += top_k_precision(&got_prq, &true_prq);

        let true_frpq: Vec<(RegionId, RegionId)> = tk_frpq_sharded(truth, &q, k, qt, pool)
            .into_iter()
            .map(|x| x.0)
            .collect();
        let got_frpq: Vec<(RegionId, RegionId)> = tk_frpq_sharded(store, &q, k, qt, pool)
            .into_iter()
            .map(|x| x.0)
            .collect();
        frpq_sum += top_k_precision(&got_frpq, &true_frpq);
    }
    (prq_sum / trials as f64, frpq_sum / trials as f64)
}

/// Prints an aligned table followed by a machine-readable CSV block.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
    println!("\ncsv:{}", headers.join(","));
    for row in rows {
        println!("csv:{}", row.join(","));
    }
}

/// Convenience: format a float with three decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Returns a C2MN config with `first_configured = Regions` (the C2MN@R
/// variant of Fig. 11).
pub fn at_r_config(base: &C2mnConfig) -> C2mnConfig {
    C2mnConfig {
        first_configured: FirstConfigured::Regions,
        ..base.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_reads_defaults() {
        let s = Scale::from_env();
        assert!(s.objects > 0 && s.mcmc_m > 0 && s.max_iter > 0 && s.k > 0);
        assert!(s.threads > 0 && s.shards > 0);
        assert_eq!(s.pool().threads(), s.threads);
    }

    fn tiny_dataset(seed: u64, objects: usize) -> Dataset {
        let space = BuildingGenerator::small_office()
            .generate(&mut StdRng::seed_from_u64(1))
            .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::generate(
            "d",
            &space,
            SimulationConfig::quick(),
            PositioningConfig::synthetic(5.0, 2.0),
            None,
            objects,
            &mut rng,
        )
    }

    #[test]
    fn chunking_respects_bounds() {
        let d = tiny_dataset(2, 3);
        let chunks = chunk_sequences(&d.sequences, 40);
        // A 1-record tail is folded into the previous chunk, so chunk
        // lengths span 2..=max_len+1.
        assert!(chunks
            .iter()
            .all(|c| c.records.len() <= 41 && c.records.len() >= 2));
    }

    #[test]
    fn chunking_conserves_records() {
        // Regression: trailing chunks of length 1 were silently dropped,
        // removing records from every accuracy denominator. Check record
        // conservation across chunk sizes that do and do not divide the
        // sequence lengths (max_len = k and k+1 sweep the remainder space).
        let d = tiny_dataset(3, 4);
        let orig: usize = d
            .sequences
            .iter()
            .map(|s| s.records.len())
            .filter(|&n| n >= 2)
            .sum();
        assert!(orig > 0);
        for max_len in [2, 3, 5, 7, 11, 40, 1000] {
            let chunks = chunk_sequences(&d.sequences, max_len);
            let total: usize = chunks.iter().map(|c| c.records.len()).sum();
            assert_eq!(total, orig, "records lost at max_len={max_len}");
        }
    }

    #[test]
    fn chunking_folds_one_record_tail() {
        // 7 records chunked at 3 → [3, 3, 1]: the tail must fold into the
        // middle chunk, yielding [3, 4].
        let d = tiny_dataset(4, 1);
        let seq = LabeledSequence {
            object_id: d.sequences[0].object_id,
            records: d.sequences[0].records.iter().take(7).cloned().collect(),
        };
        assert_eq!(seq.records.len(), 7, "simulation produced a short run");
        let chunks = chunk_sequences(&[seq], 3);
        let lens: Vec<usize> = chunks.iter().map(|c| c.records.len()).collect();
        assert_eq!(lens, vec![3, 4]);
    }

    #[test]
    fn batched_method_matches_sequential_closure() {
        let space = BuildingGenerator::small_office()
            .generate(&mut StdRng::seed_from_u64(1))
            .unwrap();
        let d = tiny_dataset(5, 4);
        let mut rng = StdRng::seed_from_u64(6);
        let config = C2mnConfig::quick_test();
        let model = C2mn::train(&space, &d.sequences, &config, &mut rng).unwrap();
        let batched = Method::batched("C2MN", &model, 4);
        let closure = Method::new("C2MN", |r, rng| model.label(r, rng));
        let sequences = positioning_batch(&d.sequences);
        assert_eq!(
            batched.label_all(&sequences, 11),
            closure.label_all(&sequences, 11)
        );
    }

    #[test]
    fn truth_store_has_one_entry_per_object() {
        let space = BuildingGenerator::small_office()
            .generate(&mut StdRng::seed_from_u64(1))
            .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let d = Dataset::generate(
            "d",
            &space,
            SimulationConfig::quick(),
            PositioningConfig::synthetic(5.0, 2.0),
            None,
            4,
            &mut rng,
        );
        // Chunked / repeated sequences of one object merge into one entry.
        let mut distinct: Vec<u64> = d.sequences.iter().map(|s| s.object_id).collect();
        distinct.sort_unstable();
        distinct.dedup();
        let store = truth_store(&d.sequences, 3);
        assert_eq!(store.num_shards(), 3);
        assert_eq!(store.len(), distinct.len());
    }

    #[test]
    fn annotate_store_is_shard_and_thread_invariant() {
        let space = BuildingGenerator::small_office()
            .generate(&mut StdRng::seed_from_u64(1))
            .unwrap();
        let d = tiny_dataset(7, 5);
        let mut rng = StdRng::seed_from_u64(8);
        let config = C2mnConfig::quick_test();
        let model = C2mn::train(&space, &d.sequences, &config, &mut rng).unwrap();
        let truth = truth_store(&d.sequences, 4);
        let reference = {
            let m = Method::batched("C2MN", &model, 1);
            let store = annotate_store(&m, &d.sequences, 11, 4);
            query_precision(&space, &store, &truth, 5, 10.0, 3, 5, &WorkerPool::new(1))
        };
        for (threads, shards) in [(2, 1), (4, 4), (3, 9)] {
            let m = Method::batched("C2MN", &model, threads);
            let truth = truth_store(&d.sequences, shards);
            let store = annotate_store(&m, &d.sequences, 11, shards);
            let got = query_precision(
                &space,
                &store,
                &truth,
                5,
                10.0,
                3,
                5,
                &WorkerPool::new(threads),
            );
            assert_eq!(got, reference, "threads={threads} shards={shards}");
        }
    }
}
