//! Training preprocessing: usable-sequence filtering, per-sequence
//! contexts, truth indices, historical region frequencies, and the initial
//! configured chains of Algorithm 1 (line 1 / footnote 6).
//!
//! Everything here is computed once per [`Trainer::run`](crate::Trainer::run)
//! call, before the first outer iteration; the sampling kernel
//! ([`crate::sample`]) and the optimizer step ([`crate::step`]) only read
//! the prepared data.

use crate::{C2mnConfig, SequenceContext, TrainError};
use ism_indoor::{IndoorSpace, RegionId};
use ism_mobility::{LabeledSequence, MobilityEvent};

/// One usable training sequence with everything sampling needs: the
/// decode/training context plus the empirical (ground-truth) labels and
/// their candidate indices.
pub(crate) struct PreparedSequence<'a> {
    /// Training context (truth regions force-included in candidates).
    pub ctx: SequenceContext<'a>,
    /// Ground-truth region per record.
    pub truth_regions: Vec<RegionId>,
    /// Ground-truth event per record.
    pub truth_events: Vec<MobilityEvent>,
    /// Candidate index of the truth region per record.
    pub truth_r_idx: Vec<usize>,
}

/// The fully preprocessed training set.
pub(crate) struct TrainingData<'a> {
    /// Usable (≥ 2 records) sequences in input order.
    pub seqs: Vec<PreparedSequence<'a>>,
    /// Normalised historical region visit frequencies (optional `fsm`
    /// prior; always computed so the extension can toggle without
    /// retraining).
    pub region_freq: Vec<f64>,
    /// Training sequences dropped for having fewer than 2 records.
    pub skipped_sequences: usize,
}

/// Maps each record's ground-truth region to its candidate index,
/// reporting a typed error (instead of aborting the process) when a
/// malformed labelled sequence leaves the truth outside the candidates.
pub(crate) fn truth_indices(
    ctx: &SequenceContext<'_>,
    truth_regions: &[RegionId],
    sequence: usize,
) -> Result<Vec<usize>, TrainError> {
    (0..ctx.len())
        .map(|site| {
            ctx.candidate_index(site, truth_regions[site])
                .ok_or(TrainError::TruthNotInCandidates { sequence, site })
        })
        .collect()
}

/// Preprocesses `train` into [`TrainingData`]: filters out sequences with
/// fewer than 2 records (counting them), computes the historical region
/// frequencies over the usable records, and builds one training context
/// plus truth indices per usable sequence.
pub(crate) fn prepare<'a>(
    space: &'a IndoorSpace,
    config: &'a C2mnConfig,
    train: &[LabeledSequence],
) -> Result<TrainingData<'a>, TrainError> {
    // Usable sequences keep their input index, so diagnostics point at
    // the right element of the slice the caller passed in.
    let usable: Vec<(usize, &LabeledSequence)> = train
        .iter()
        .enumerate()
        .filter(|(_, s)| s.records.len() >= 2)
        .collect();
    let skipped_sequences = train.len() - usable.len();
    if usable.is_empty() {
        return Err(TrainError::EmptyTrainingSet);
    }

    let mut region_freq = vec![0.0f64; space.regions().len()];
    let mut total = 0.0f64;
    for (_, s) in &usable {
        for r in &s.records {
            region_freq[r.region.index()] += 1.0;
            total += 1.0;
        }
    }
    if total > 0.0 {
        for f in &mut region_freq {
            *f /= total;
        }
    }

    let mut seqs = Vec::with_capacity(usable.len());
    for &(sequence, s) in &usable {
        let truth_regions: Vec<RegionId> = s.records.iter().map(|r| r.region).collect();
        let truth_events: Vec<MobilityEvent> = s.records.iter().map(|r| r.event).collect();
        let records: Vec<_> = s.positioning().collect();
        let ctx = SequenceContext::build_for_training(
            space,
            config,
            &records,
            &region_freq,
            &truth_regions,
        );
        let truth_r_idx = truth_indices(&ctx, &truth_regions, sequence)?;
        seqs.push(PreparedSequence {
            ctx,
            truth_regions,
            truth_events,
            truth_r_idx,
        });
    }

    Ok(TrainingData {
        seqs,
        region_freq,
        skipped_sequences,
    })
}

impl PreparedSequence<'_> {
    /// The initial configured event chain: ST-DBSCAN classes (clustered →
    /// stay, noise → pass).
    pub fn initial_events(&self) -> Vec<MobilityEvent> {
        self.ctx.dbscan_events.clone()
    }

    /// The initial configured region chain: nearest-neighbour matching.
    pub fn initial_regions(&self) -> Vec<RegionId> {
        (0..self.ctx.len())
            .map(|i| self.ctx.candidates[i][self.ctx.nearest_idx[i]])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ism_indoor::BuildingGenerator;
    use ism_mobility::{Dataset, PositioningConfig, SimulationConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ism_indoor::IndoorSpace, Vec<LabeledSequence>) {
        let mut rng = StdRng::seed_from_u64(1);
        let space = BuildingGenerator::small_office()
            .generate(&mut rng)
            .unwrap();
        let dataset = Dataset::generate(
            "p",
            &space,
            SimulationConfig::quick(),
            PositioningConfig::synthetic(8.0, 2.0),
            None,
            4,
            &mut rng,
        );
        (space, dataset.sequences)
    }

    #[test]
    fn prepare_counts_skipped_short_sequences() {
        let (space, mut seqs) = setup();
        let n_usable = seqs.len();
        // Add two degenerate sequences: empty and single-record.
        let mut short = seqs[0].clone();
        short.records.truncate(1);
        let mut empty = seqs[0].clone();
        empty.records.clear();
        seqs.push(short);
        seqs.push(empty);
        let config = C2mnConfig::quick_test();
        let data = prepare(&space, &config, &seqs).unwrap();
        assert_eq!(data.seqs.len(), n_usable);
        assert_eq!(data.skipped_sequences, 2);
        // Frequencies are a distribution over the usable records.
        let sum: f64 = data.region_freq.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn prepare_rejects_all_short_sets() {
        let (space, seqs) = setup();
        let mut short = seqs[0].clone();
        short.records.truncate(1);
        let config = C2mnConfig::quick_test();
        assert_eq!(
            prepare(&space, &config, &[short]).err(),
            Some(TrainError::EmptyTrainingSet)
        );
        assert_eq!(
            prepare(&space, &config, &[]).err(),
            Some(TrainError::EmptyTrainingSet)
        );
    }

    #[test]
    fn truth_outside_candidates_is_a_typed_error() {
        let (space, seqs) = setup();
        let config = C2mnConfig::quick_test();
        let records: Vec<_> = seqs[0].positioning().collect();
        // A *decode* context does not force-include the truth, so a far
        // region reproduces the malformed-sequence condition.
        let ctx = SequenceContext::build(&space, &config, &records, &[]);
        let far = space.regions().last().unwrap().id;
        let missing = (0..ctx.len()).find(|&i| ctx.candidate_index(i, far).is_none());
        if let Some(site) = missing {
            let truth = vec![far; ctx.len()];
            let err = truth_indices(&ctx, &truth, 5).unwrap_err();
            match err {
                TrainError::TruthNotInCandidates { sequence, site: s } => {
                    assert_eq!(sequence, 5);
                    assert_eq!(s, site);
                }
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn initial_chains_match_context() {
        let (space, seqs) = setup();
        let config = C2mnConfig::quick_test();
        let data = prepare(&space, &config, &seqs).unwrap();
        for seq in &data.seqs {
            assert_eq!(seq.initial_events(), seq.ctx.dbscan_events);
            let regions = seq.initial_regions();
            assert_eq!(regions.len(), seq.ctx.len());
            for (i, r) in regions.iter().enumerate() {
                assert_eq!(*r, seq.ctx.candidates[i][seq.ctx.nearest_idx[i]]);
            }
        }
    }
}
