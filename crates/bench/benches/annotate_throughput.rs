//! Batch annotation throughput: sequences/second of [`BatchAnnotator`] at
//! 1, 2 and 4 worker threads over a mall workload, plus streaming-ingest
//! throughput of the `ism-engine` [`IngestSession`] front-end against the
//! offline `annotate_into_store` reference (both produce byte-identical
//! stores — the measurement is pure overhead accounting), plus training
//! throughput of the pool-parallel [`Trainer`] at the same thread counts
//! (all thread counts learn byte-identical weights — again pure speedup
//! accounting).
//!
//! Besides the usual criterion console report, the bench writes
//! `BENCH_annotate.json` at the repository root so CI can archive the perf
//! trajectory across commits. In `--test` (smoke) mode each configuration
//! runs once and the JSON carries coarse single-run estimates.
//!
//! [`IngestSession`]: ism_engine::IngestSession

use criterion::Criterion;
use ism_bench::positioning_batch;
use ism_c2mn::{BatchAnnotator, C2mn, Trainer};
use ism_engine::EngineBuilder;
use ism_indoor::BuildingGenerator;
use ism_mobility::{Dataset, PositioningConfig, SimulationConfig};
use ism_runtime::WorkerPool;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
const SHARDS: usize = 8;
const QUEUE_CAPACITY: usize = 8;
const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_annotate.json");

fn main() {
    let mut c = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .configure_from_args();

    // A mall workload sized so a full measurement finishes in seconds:
    // a trained model plus a batch of ~100-record test sequences.
    let mut rng = StdRng::seed_from_u64(1);
    let space = BuildingGenerator::mall().generate(&mut rng).unwrap();
    let dataset = Dataset::generate(
        "bench",
        &space,
        SimulationConfig::quick(),
        PositioningConfig::wifi_mall(),
        None,
        16,
        &mut rng,
    );
    let config = ism_c2mn::C2mnConfig::quick_test();
    let model = C2mn::train(&space, &dataset.sequences, &config, &mut rng).unwrap();
    let sequences = positioning_batch(&dataset.sequences);
    let object_ids: Vec<u64> = dataset.sequences.iter().map(|s| s.object_id).collect();
    let num_records: usize = sequences.iter().map(|s| s.len()).sum();

    let mut throughputs: Vec<(usize, f64)> = Vec::new();
    for threads in THREAD_COUNTS {
        let engine = BatchAnnotator::new(&model, threads, 7);
        c.bench_function(&format!("annotate/mall_batch_{threads}_threads"), |b| {
            b.iter(|| engine.label_batch(black_box(&sequences)))
        });
        if let Some(ns) = c.last_estimate_ns() {
            throughputs.push((threads, sequences.len() as f64 / (ns / 1e9)));
        }
    }

    // Streaming ingest (session push + incremental seal into the live
    // store) vs the offline annotate-into-store reference, per thread
    // count. Each iteration builds a fresh engine so the store always
    // starts empty; the model clone is parameters-only and cheap. Both
    // sides clone the batch inside the timed region — the session consumes
    // owned sequences, so the offline side clones too to keep the ratio a
    // comparison of engine machinery rather than harness allocation.
    let mut ingest: Vec<(usize, Option<f64>, Option<f64>)> = Vec::new();
    for threads in THREAD_COUNTS {
        let annotator = BatchAnnotator::new(&model, threads, 7);
        c.bench_function(&format!("ingest/offline_store_{threads}_threads"), |b| {
            b.iter(|| {
                let batch = sequences.clone();
                annotator.annotate_into_store(black_box(&batch), &object_ids, SHARDS)
            })
        });
        let offline = c
            .last_estimate_ns()
            .map(|ns| sequences.len() as f64 / (ns / 1e9));
        c.bench_function(&format!("ingest/streaming_{threads}_threads"), |b| {
            b.iter(|| {
                let mut engine = EngineBuilder::new()
                    .threads(threads)
                    .shards(SHARDS)
                    .base_seed(7)
                    .queue_capacity(QUEUE_CAPACITY)
                    .build(model.clone())
                    .unwrap();
                let mut session = engine.ingest();
                for (id, seq) in object_ids.iter().zip(&sequences) {
                    session.push(*id, seq.clone());
                }
                session.seal();
                black_box(engine.num_objects())
            })
        });
        let streaming = c
            .last_estimate_ns()
            .map(|ns| sequences.len() as f64 / (ns / 1e9));
        ingest.push((threads, streaming, offline));
    }

    // Pool-parallel training (per-sequence MCMC sampling fanned out over
    // the worker pool): training sequences/sec per thread count. Weights
    // are byte-identical at every thread count, so this measures pure
    // parallel speedup of Algorithm 1's sampling stage.
    let train_seqs = &dataset.sequences;
    let mut train: Vec<(usize, Option<f64>)> = Vec::new();
    for threads in THREAD_COUNTS {
        let pool = WorkerPool::new(threads);
        c.bench_function(&format!("train/mall_{threads}_threads"), |b| {
            b.iter(|| {
                Trainer::new(&space, config.clone())
                    .seed(7)
                    .pool(&pool)
                    .run(black_box(train_seqs))
                    .unwrap()
                    .model
            })
        });
        let tp = c
            .last_estimate_ns()
            .map(|ns| train_seqs.len() as f64 / (ns / 1e9));
        train.push((threads, tp));
    }

    write_report(&throughputs, &ingest, &train, sequences.len(), num_records);
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or("null".to_string(), |x| format!("{x:.3}"))
}

/// Emits `BENCH_annotate.json` (hand-rolled JSON: the vendored serde does
/// not serialize).
fn write_report(
    throughputs: &[(usize, f64)],
    ingest: &[(usize, Option<f64>, Option<f64>)],
    train: &[(usize, Option<f64>)],
    num_sequences: usize,
    num_records: usize,
) {
    // Speedups are relative to the measured 1-thread run; when a CLI
    // filter skipped it, report `null` rather than a made-up baseline.
    let baseline = throughputs
        .iter()
        .find(|&&(threads, _)| threads == 1)
        .map(|&(_, tp)| tp);
    let entries: Vec<String> = throughputs
        .iter()
        .map(|&(threads, tp)| {
            let speedup = baseline.map_or("null".to_string(), |base| format!("{:.3}", tp / base));
            format!(
                "    {{\"threads\": {threads}, \"sequences_per_sec\": {tp:.3}, \
                 \"speedup_vs_1_thread\": {speedup}}}"
            )
        })
        .collect();
    let ingest_entries: Vec<String> = ingest
        .iter()
        .map(|&(threads, streaming, offline)| {
            let ratio = match (streaming, offline) {
                (Some(s), Some(o)) if o > 0.0 => format!("{:.3}", s / o),
                _ => "null".to_string(),
            };
            format!(
                "    {{\"threads\": {threads}, \
                 \"streaming_sequences_per_sec\": {}, \
                 \"offline_sequences_per_sec\": {}, \
                 \"streaming_vs_offline\": {ratio}}}",
                fmt_opt(streaming),
                fmt_opt(offline)
            )
        })
        .collect();
    // Speedups relative to the measured 1-thread training run; `null`
    // when a CLI filter skipped it.
    let train_baseline = train
        .iter()
        .find(|&&(threads, _)| threads == 1)
        .and_then(|&(_, tp)| tp);
    let train_entries: Vec<String> = train
        .iter()
        .map(|&(threads, tp)| {
            let speedup = match (tp, train_baseline) {
                (Some(tp), Some(base)) if base > 0.0 => format!("{:.3}", tp / base),
                _ => "null".to_string(),
            };
            format!(
                "    {{\"threads\": {threads}, \
                 \"train_sequences_per_sec\": {}, \
                 \"speedup_vs_1_thread\": {speedup}}}",
                fmt_opt(tp)
            )
        })
        .collect();
    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"annotate_throughput\",\n  \"workload\": \"mall\",\n  \
         \"num_sequences\": {num_sequences},\n  \"num_records\": {num_records},\n  \
         \"host_parallelism\": {available},\n  \"queue_capacity\": {QUEUE_CAPACITY},\n  \
         \"shards\": {SHARDS},\n  \"results\": [\n{}\n  ],\n  \
         \"ingest_results\": [\n{}\n  ],\n  \
         \"train_results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n"),
        ingest_entries.join(",\n"),
        train_entries.join(",\n")
    );
    match std::fs::write(OUT_PATH, &json) {
        Ok(()) => println!("wrote {OUT_PATH}"),
        Err(e) => eprintln!("could not write {OUT_PATH}: {e}"),
    }
}
