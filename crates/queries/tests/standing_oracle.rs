//! Standing-query oracle property suite: a standing TkPRQ/TkFRPQ folded
//! forward from [`SealSummary`]s is **byte-identical at every seal** to
//! re-running the full query — against both the sharded engine and the
//! flat sequential reference — for random stores, growth schedules, shard
//! counts and thread counts.

use ism_indoor::RegionId;
use ism_mobility::{MobilityEvent, MobilitySemantics, TimePeriod};
use ism_queries::{
    tk_frpq, tk_frpq_sharded, tk_prq, tk_prq_sharded, SemanticsStore, ShardedSemanticsStore,
    StandingTkFrpq, StandingTkPrq,
};
use ism_runtime::WorkerPool;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of one random growth schedule.
#[derive(Debug, Clone, Copy)]
struct Case {
    seed: u64,
    regions: u32,
    query_regions: u32,
    k: usize,
    shards: usize,
    threads: usize,
    waves: usize,
    wave_objects: u64,
    qt_start: f64,
    qt_len: f64,
}

prop_compose! {
    // The vendored proptest derives strategies for tuples up to arity 8,
    // so thread count and wave size are derived from the seed below.
    fn arb_case()(
        seed in 0u64..u64::MAX / 2,
        regions in 1u32..10,
        query_regions in 1u32..10,
        k in 1usize..8,
        shards in 1usize..6,
        waves in 1usize..5,
        qt_start in 0.0f64..500.0,
        qt_len in 0.0f64..800.0,
    ) -> Case {
        Case {
            seed, regions, query_regions, k, shards,
            threads: 1 + (seed % 3) as usize,
            waves,
            wave_objects: 1 + seed % 11,
            qt_start, qt_len,
        }
    }
}

/// One random timeline entry; ~40% passes, occasional long stays so the
/// `max_duration` widening matters.
fn random_semantics(rng: &mut StdRng, regions: u32) -> MobilitySemantics {
    let start = rng.random_range(0.0..1000.0);
    let duration = if rng.random_bool(0.1) {
        rng.random_range(100.0..400.0)
    } else {
        rng.random_range(1.0..60.0)
    };
    MobilitySemantics {
        region: RegionId(rng.random_range(0..regions)),
        period: TimePeriod::new(start, start + duration),
        event: if rng.random_bool(0.6) {
            MobilityEvent::Stay
        } else {
            MobilityEvent::Pass
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After every seal of a randomly growing store, standing results
    /// equal full re-runs of the sharded engine *and* the flat oracle.
    #[test]
    fn standing_equals_rerun_at_every_seal(case in arb_case()) {
        let mut rng = StdRng::seed_from_u64(case.seed);
        let query: Vec<RegionId> = (0..case.query_regions)
            .map(|_| RegionId(rng.random_range(0..case.regions)))
            .collect();
        let qt = TimePeriod::new(case.qt_start, case.qt_start + case.qt_len);
        let pool = WorkerPool::new(case.threads);

        let mut sharded = ShardedSemanticsStore::new(case.shards);
        let mut flat = SemanticsStore::new();
        // Pre-seed some sealed data so registration starts non-empty.
        for _ in 0..case.wave_objects {
            let object = rng.random_range(0..20u64);
            let timeline: Vec<_> = (0..rng.random_range(1..4))
                .map(|_| random_semantics(&mut rng, case.regions))
                .collect();
            sharded.append(object, timeline.clone());
            flat.insert(object, timeline);
        }
        sharded.seal();

        let mut standing_prq = StandingTkPrq::new(&query, case.k, qt, &sharded, &pool);
        let mut standing_frpq = StandingTkFrpq::new(&query, case.k, qt, &sharded, &pool);
        prop_assert_eq!(
            standing_prq.result(),
            tk_prq(&flat, &query, case.k, qt),
            "registration PRQ"
        );
        prop_assert_eq!(
            standing_frpq.result(),
            tk_frpq(&flat, &query, case.k, qt),
            "registration FRPQ"
        );

        for wave in 0..case.waves {
            for _ in 0..case.wave_objects {
                let object = rng.random_range(0..20u64);
                let timeline: Vec<_> = (0..rng.random_range(1..4))
                    .map(|_| random_semantics(&mut rng, case.regions))
                    .collect();
                sharded.append(object, timeline.clone());
                flat.insert(object, timeline);
            }
            // Alternate sequential and pool-parallel seals.
            let summary = if wave % 2 == 0 {
                sharded.seal_summarized()
            } else {
                sharded.seal_summarized_with(&pool)
            };
            standing_prq.observe_seal(&summary);
            standing_frpq.observe_seal(&summary);
            prop_assert_eq!(
                standing_prq.result(),
                tk_prq_sharded(&sharded, &query, case.k, qt, &pool),
                "wave {} PRQ vs sharded", wave
            );
            prop_assert_eq!(
                standing_prq.result(),
                tk_prq(&flat, &query, case.k, qt),
                "wave {} PRQ vs flat", wave
            );
            prop_assert_eq!(
                standing_frpq.result(),
                tk_frpq_sharded(&sharded, &query, case.k, qt, &pool),
                "wave {} FRPQ vs sharded", wave
            );
            prop_assert_eq!(
                standing_frpq.result(),
                tk_frpq(&flat, &query, case.k, qt),
                "wave {} FRPQ vs flat", wave
            );
        }
    }
}
