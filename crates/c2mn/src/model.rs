//! The public C2MN model: training, labeling, annotation.

use crate::learn::{alternate_learning, TrainReport};
use crate::{C2mnConfig, CoupledNetwork, EventSites, RegionSites, SequenceContext, Weights};
use ism_indoor::{IndoorSpace, RegionId};
use ism_mobility::{
    merge_labels, LabeledSequence, MobilityEvent, MobilitySemantics, PositioningRecord,
};
use ism_pgm::{gibbs_sweep, icm_sweep};
use rand::Rng;
use std::fmt;

/// Errors of model training.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum C2mnError {
    /// The training set contains no usable sequence.
    EmptyTrainingSet,
}

impl fmt::Display for C2mnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            C2mnError::EmptyTrainingSet => write!(f, "training set contains no sequences"),
        }
    }
}

impl std::error::Error for C2mnError {}

/// A trained coupled conditional Markov network bound to a venue.
#[derive(Debug)]
pub struct C2mn<'a> {
    space: &'a IndoorSpace,
    config: C2mnConfig,
    weights: Weights,
    region_freq: Vec<f64>,
    report: TrainReport,
}

impl<'a> C2mn<'a> {
    /// Trains a model on fully-labelled sequences using the alternate
    /// learning algorithm (Algorithm 1).
    pub fn train<R: Rng + ?Sized>(
        space: &'a IndoorSpace,
        train: &[LabeledSequence],
        config: &C2mnConfig,
        rng: &mut R,
    ) -> Result<Self, C2mnError> {
        let usable: Vec<LabeledSequence> = train
            .iter()
            .filter(|s| s.records.len() >= 2)
            .cloned()
            .collect();
        if usable.is_empty() {
            return Err(C2mnError::EmptyTrainingSet);
        }
        // Historical region frequencies (optional fsm prior; always
        // computed so the extension can be toggled without retraining).
        let mut region_freq = vec![0.0f64; space.regions().len()];
        let mut total = 0.0f64;
        for s in &usable {
            for r in &s.records {
                region_freq[r.region.index()] += 1.0;
                total += 1.0;
            }
        }
        if total > 0.0 {
            for f in &mut region_freq {
                *f /= total;
            }
        }
        let out = alternate_learning(space, &usable, config, &region_freq, rng);
        Ok(C2mn {
            space,
            config: config.clone(),
            weights: out.weights,
            region_freq,
            report: out.report,
        })
    }

    /// Builds a model from explicit weights (tests, ablations, and loading
    /// previously trained parameters).
    pub fn from_weights(space: &'a IndoorSpace, config: C2mnConfig, weights: Weights) -> Self {
        C2mn {
            space,
            config,
            weights,
            region_freq: Vec::new(),
            report: TrainReport::default(),
        }
    }

    /// The learned template weights.
    pub fn weights(&self) -> &Weights {
        &self.weights
    }

    /// The model configuration.
    pub fn config(&self) -> &C2mnConfig {
        &self.config
    }

    /// Training diagnostics.
    pub fn report(&self) -> &TrainReport {
        &self.report
    }

    /// The venue this model is bound to.
    pub fn space(&self) -> &'a IndoorSpace {
        self.space
    }

    /// Labels every record of a p-sequence with a (region, event) pair by
    /// joint MAP inference: ST-DBSCAN / nearest-neighbour initialisation,
    /// annealed Gibbs sweeps alternating between the two chains, then ICM
    /// to a local optimum.
    pub fn label<R: Rng + ?Sized>(
        &self,
        records: &[PositioningRecord],
        rng: &mut R,
    ) -> Vec<(RegionId, MobilityEvent)> {
        if records.is_empty() {
            return Vec::new();
        }
        let ctx = SequenceContext::build(self.space, &self.config, records, &self.region_freq);
        let net = CoupledNetwork::new(&ctx, &self.weights);
        let n = ctx.len();

        let mut region_state: Vec<usize> = ctx.nearest_idx.clone();
        let mut event_state: Vec<usize> = ctx.dbscan_events.iter().map(|e| e.index()).collect();
        let mut regions: Vec<RegionId> =
            (0..n).map(|i| ctx.candidates[i][region_state[i]]).collect();
        let mut events: Vec<MobilityEvent> = ctx.dbscan_events.clone();

        // Annealed coupled Gibbs.
        let sweeps = self.config.anneal_sweeps.max(1);
        let ratio = (self.config.anneal_t_end / self.config.anneal_t_start).max(1e-9);
        for k in 0..sweeps {
            let t = self.config.anneal_t_start * ratio.powf(k as f64 / sweeps as f64);
            {
                let rs = RegionSites {
                    net: &net,
                    events: &events,
                };
                gibbs_sweep(&rs, &mut region_state, t, rng);
            }
            for i in 0..n {
                regions[i] = ctx.candidates[i][region_state[i]];
            }
            {
                let es = EventSites {
                    net: &net,
                    regions: &regions,
                };
                gibbs_sweep(&es, &mut event_state, t, rng);
            }
            for i in 0..n {
                events[i] = MobilityEvent::ALL[event_state[i]];
            }
        }

        // ICM polish: alternate until a joint fixed point.
        for _ in 0..(2 * n + 4) {
            let changed_r = {
                let rs = RegionSites {
                    net: &net,
                    events: &events,
                };
                icm_sweep(&rs, &mut region_state)
            };
            for i in 0..n {
                regions[i] = ctx.candidates[i][region_state[i]];
            }
            let changed_e = {
                let es = EventSites {
                    net: &net,
                    regions: &regions,
                };
                icm_sweep(&es, &mut event_state)
            };
            for i in 0..n {
                events[i] = MobilityEvent::ALL[event_state[i]];
            }
            if changed_r == 0 && changed_e == 0 {
                break;
            }
        }

        regions.into_iter().zip(events).collect()
    }

    /// Annotates a p-sequence with m-semantics: label every record, then
    /// merge consecutive records sharing both labels (label-and-merge).
    pub fn annotate<R: Rng + ?Sized>(
        &self,
        records: &[PositioningRecord],
        rng: &mut R,
    ) -> Vec<MobilitySemantics> {
        let labels = self.label(records, rng);
        let times: Vec<f64> = records.iter().map(|r| r.t).collect();
        merge_labels(&times, &labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ism_indoor::BuildingGenerator;
    use ism_mobility::{Dataset, PositioningConfig, SimulationConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pipeline() -> (ism_indoor::IndoorSpace, Dataset) {
        let mut rng = StdRng::seed_from_u64(1);
        let space = BuildingGenerator::small_office()
            .generate(&mut rng)
            .unwrap();
        let dataset = Dataset::generate(
            "d",
            &space,
            SimulationConfig::quick(),
            PositioningConfig::synthetic(8.0, 1.5),
            None,
            8,
            &mut rng,
        );
        (space, dataset)
    }

    #[test]
    fn end_to_end_training_and_annotation() {
        let (space, dataset) = pipeline();
        let mut rng = StdRng::seed_from_u64(2);
        let (train, test) = dataset.split(0.7, &mut rng);
        let config = C2mnConfig::quick_test();
        let model = C2mn::train(&space, &train, &config, &mut rng).unwrap();

        let mut correct_r = 0usize;
        let mut correct_e = 0usize;
        let mut total = 0usize;
        for seq in &test {
            let records: Vec<_> = seq.positioning().collect();
            let labels = model.label(&records, &mut rng);
            assert_eq!(labels.len(), records.len());
            for (lab, truth) in labels.iter().zip(seq.truth_labels()) {
                total += 1;
                correct_r += usize::from(lab.0 == truth.0);
                correct_e += usize::from(lab.1 == truth.1);
            }
        }
        assert!(total > 0);
        let ra = correct_r as f64 / total as f64;
        let ea = correct_e as f64 / total as f64;
        // With low noise in a small venue the model should do well.
        assert!(ra > 0.5, "region accuracy {ra}");
        assert!(ea > 0.6, "event accuracy {ea}");
    }

    #[test]
    fn annotation_merges_runs() {
        let (space, dataset) = pipeline();
        let mut rng = StdRng::seed_from_u64(3);
        let config = C2mnConfig::quick_test();
        let model = C2mn::train(&space, &dataset.sequences, &config, &mut rng).unwrap();
        let records: Vec<_> = dataset.sequences[0].positioning().collect();
        let ms = model.annotate(&records, &mut rng);
        assert!(!ms.is_empty());
        assert!(ms.len() <= records.len());
        // Periods are ordered and disjoint.
        for w in ms.windows(2) {
            assert!(w[0].period.end < w[1].period.start);
        }
        // Adjacent m-semantics differ in at least one label.
        for w in ms.windows(2) {
            assert!(w[0].region != w[1].region || w[0].event != w[1].event);
        }
    }

    #[test]
    fn empty_inputs() {
        let (space, dataset) = pipeline();
        let mut rng = StdRng::seed_from_u64(4);
        let config = C2mnConfig::quick_test();
        assert_eq!(
            C2mn::train(&space, &[], &config, &mut rng).unwrap_err(),
            C2mnError::EmptyTrainingSet
        );
        let model = C2mn::train(&space, &dataset.sequences, &config, &mut rng).unwrap();
        assert!(model.label(&[], &mut rng).is_empty());
        assert!(model.annotate(&[], &mut rng).is_empty());
    }

    #[test]
    fn from_weights_skips_training() {
        let (space, dataset) = pipeline();
        let mut rng = StdRng::seed_from_u64(5);
        let model = C2mn::from_weights(&space, C2mnConfig::quick_test(), Weights::uniform(1.0));
        let records: Vec<_> = dataset.sequences[0].positioning().collect();
        let labels = model.label(&records, &mut rng);
        assert_eq!(labels.len(), records.len());
    }
}
