//! The per-sequence MCMC sampling kernel of Algorithm 1 (lines 5–8) and
//! the training seed derivation.
//!
//! [`sample_sequence`] is *pure*: its output is a function of the prepared
//! sequence, the configured chains, the current weights, and an explicit
//! seed — never of shared mutable state or of which worker runs it. That
//! is what lets [`Trainer::run`](crate::Trainer::run) fan the per-sequence
//! sampling out over a [`WorkerPool`](ism_runtime::WorkerPool) while
//! keeping the learned weights byte-identical for any thread count.

use crate::prep::PreparedSequence;
use crate::structure::NUM_FEATURES;
use crate::{CoupledNetwork, Weights};
use ism_mobility::MobilityEvent;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Domain-separation constant of the training seed stream: keeps
/// `train_seed(base, iter, seq)` disjoint from
/// `sequence_seed(base, seq)` even at `iter = 0`, so a caller reusing one
/// base seed for training and decoding never feeds the same RNG stream to
/// both.
const TRAIN_DOMAIN: u64 = 0x7452_4149_4E53_4545; // "tRAINSEE"

/// SplitMix64 finaliser shared by the seed derivations of this crate
/// ([`sequence_seed`](crate::sequence_seed) and [`train_seed`]).
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the RNG seed of training sequence `seq` in outer iteration
/// `iter` of a run keyed by `base_seed`.
///
/// SplitMix64-style finalisation over
/// `base_seed ⊕ domain ⊕ (iter · c₁) ⊕ (seq · φ64)`, mirroring
/// [`sequence_seed`](crate::sequence_seed) but domain-separated from it:
/// neighbouring `(iter, seq)` pairs get uncorrelated streams, reusing one
/// base seed for training and decoding is safe, and the derivation is
/// part of the public determinism contract — the sequential reference
///
/// ```text
/// for iter in 0..max_iter {
///     for (seq, prepared) in training_set.iter().enumerate() {
///         let mut rng = StdRng::seed_from_u64(train_seed(base_seed, iter, seq));
///         /* draw the M Gibbs samples of every site of `prepared` */
///     }
///     /* fold samples into one L-BFGS step */
/// }
/// ```
///
/// produces exactly the weights of a pool-parallel [`Trainer`] run.
///
/// [`Trainer`]: crate::Trainer
pub fn train_seed(base_seed: u64, iter: usize, seq: usize) -> u64 {
    splitmix64(
        base_seed
            ^ TRAIN_DOMAIN
            ^ (iter as u64).wrapping_mul(0xA076_1D64_78BD_642F)
            ^ (seq as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    )
}

/// Per-site MCMC sample summary: Δf = f(sampled) − f(empirical), stored
/// only for samples that differ from the empirical label.
pub(crate) struct SiteSamples {
    /// Samples that matched the empirical label.
    pub zero: u32,
    /// Feature displacements of the samples that differed.
    pub deltas: Vec<[f32; NUM_FEATURES]>,
}

/// Everything one sequence contributes to an outer iteration: its sites'
/// sample summaries (feeding the surrogate of Eq. 8) and the per-site
/// sample counts (majority-voted into the configured chain, line 25).
pub(crate) struct SequenceSamples {
    /// One entry per record, in site order.
    pub sites: Vec<SiteSamples>,
    /// `votes[i][c]`: how often candidate `c` was drawn at site `i`.
    pub votes: Vec<Vec<u32>>,
}

/// Reusable per-worker buffers of the sampling kernel: the candidate
/// feature matrix and log-potential vector of the current site.
#[derive(Default)]
pub(crate) struct SampleScratch {
    feats: Vec<[f64; NUM_FEATURES]>,
    log_pot: Vec<f64>,
}

impl SampleScratch {
    pub fn new() -> Self {
        SampleScratch::default()
    }
}

/// Draws the `M` pseudo-likelihood Gibbs samples of every site of one
/// sequence (lines 5–8 of Algorithm 1) from an RNG seeded with `seed`.
///
/// Pseudo-likelihood conditions each site on its Markov blanket at the
/// EMPIRICAL values (Eq. 6): per site, the local feature vector of every
/// candidate is computed with the blanket fixed at the training labels
/// (and the configured chain Ā for the other target chain), then the `M`
/// samples are drawn from that conditional. The candidate feature vectors
/// are reused for both the sampling weights and the Δf of Eq. 8/9.
///
/// `sample_regions` selects which chain is free this iteration;
/// `events_cfg` / `regions_cfg` are the configured chains of the *other*
/// target variable.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sample_sequence(
    prep: &PreparedSequence<'_>,
    events_cfg: &[MobilityEvent],
    regions_cfg: &[ism_indoor::RegionId],
    weights: &Weights,
    sample_regions: bool,
    mcmc_m: usize,
    seed: u64,
    scratch: &mut SampleScratch,
) -> SequenceSamples {
    let mut rng = StdRng::seed_from_u64(seed);
    let ctx = &prep.ctx;
    let net = CoupledNetwork::new(ctx, weights);
    let n = ctx.len();
    // The indexed region path below conditions the blanket on
    // `truth_r_idx`; that is the same labelling as `truth_regions`.
    debug_assert!((0..n).all(|k| ctx.candidates[k][prep.truth_r_idx[k]] == prep.truth_regions[k]));
    let SampleScratch { feats, log_pot } = scratch;

    let mut sites = Vec::with_capacity(n);
    let mut votes: Vec<Vec<u32>> = (0..n)
        .map(|i| {
            vec![
                0u32;
                if sample_regions {
                    ctx.candidates[i].len()
                } else {
                    2
                }
            ]
        })
        .collect();

    for (i, site_votes) in votes.iter_mut().enumerate() {
        let (num_cand, truth_idx) = if sample_regions {
            (ctx.candidates[i].len(), prep.truth_r_idx[i])
        } else {
            (2, prep.truth_events[i].index())
        };
        feats.clear();
        feats.resize(num_cand, [0.0; NUM_FEATURES]);
        for (c, f) in feats.iter_mut().enumerate() {
            if sample_regions {
                // Indexed path: reads the precomputed pairwise tables and
                // the blanket at `truth_r_idx`, bitwise identical to the
                // `RegionId` path over `truth_regions`.
                net.region_local_features_indexed(i, c, &prep.truth_r_idx, |k| events_cfg[k], f);
            } else {
                net.event_local_features(
                    i,
                    MobilityEvent::ALL[c],
                    |k| regions_cfg[k],
                    |k| prep.truth_events[k],
                    f,
                );
            }
        }
        log_pot.clear();
        log_pot.extend(feats.iter().map(|f| weights.dot(f)));
        let mut slot = SiteSamples {
            zero: 0,
            deltas: Vec::new(),
        };
        for _ in 0..mcmc_m {
            let c = ism_pgm::sample_from_log_weights(log_pot, &mut rng);
            site_votes[c] += 1;
            if c == truth_idx {
                slot.zero += 1;
            } else {
                let mut df = [0.0f32; NUM_FEATURES];
                for k in 0..NUM_FEATURES {
                    df[k] = (feats[c][k] - feats[truth_idx][k]) as f32;
                }
                slot.deltas.push(df);
            }
        }
        sites.push(slot);
    }

    SequenceSamples { sites, votes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::prepare;
    use crate::C2mnConfig;
    use ism_indoor::BuildingGenerator;
    use ism_mobility::{Dataset, PositioningConfig, SimulationConfig};

    #[test]
    fn train_seed_is_injective_over_small_grids() {
        let mut seen = std::collections::HashSet::new();
        for iter in 0..64 {
            for seq in 0..256 {
                assert!(
                    seen.insert(train_seed(42, iter, seq)),
                    "collision at iter={iter} seq={seq}"
                );
            }
        }
        // Different base seeds decorrelate.
        assert_ne!(train_seed(1, 0, 0), train_seed(2, 0, 0));
        // iter and seq are not interchangeable.
        assert_ne!(train_seed(7, 1, 2), train_seed(7, 2, 1));
    }

    #[test]
    fn train_seeds_are_domain_separated_from_decode_seeds() {
        // Reusing one base seed for training and batch decoding must not
        // hand the same RNG stream to both: iteration 0's training seeds
        // differ from the decode sequence seeds.
        for base in [0u64, 1, 42, u64::MAX] {
            for seq in 0..64 {
                assert_ne!(
                    train_seed(base, 0, seq),
                    crate::sequence_seed(base, seq),
                    "collision at base={base} seq={seq}"
                );
            }
        }
    }

    #[test]
    fn kernel_is_a_pure_function_of_its_seed() {
        let mut rng = StdRng::seed_from_u64(1);
        let space = BuildingGenerator::small_office()
            .generate(&mut rng)
            .unwrap();
        let dataset = Dataset::generate(
            "s",
            &space,
            SimulationConfig::quick(),
            PositioningConfig::synthetic(8.0, 2.0),
            None,
            2,
            &mut rng,
        );
        let config = C2mnConfig::quick_test();
        let data = prepare(&space, &config, &dataset.sequences).unwrap();
        let prep = &data.seqs[0];
        let events = prep.initial_events();
        let regions = prep.initial_regions();
        let w = Weights::uniform(0.5);
        let run = |seed: u64, scratch: &mut SampleScratch| {
            let out = sample_sequence(prep, &events, &regions, &w, true, 8, seed, scratch);
            (
                out.votes,
                out.sites
                    .iter()
                    .map(|s| (s.zero, s.deltas.clone()))
                    .collect::<Vec<_>>(),
            )
        };
        // Same seed → identical output, even across reused scratch buffers.
        let mut fresh = SampleScratch::new();
        let mut reused = SampleScratch::new();
        let a = run(11, &mut fresh);
        let b = run(11, &mut reused);
        let _ = run(12, &mut reused); // dirty the buffers
        let c = run(11, &mut reused);
        assert_eq!(a, b);
        assert_eq!(a, c);
        // Different seeds diverge (with overwhelming probability).
        let d = run(13, &mut reused);
        assert_ne!(a.0, d.0);
    }
}
