//! Markov-blanket inference: Gibbs sampling, ICM, simulated annealing.
//!
//! C2MN's learning and decoding both operate on *local conditionals*: the
//! probability of one target node's label given its Markov blanket
//! (§IV-A). This module abstracts that interface as [`ConditionalModel`]
//! and provides the three sweep strategies the pipeline uses:
//!
//! * [`gibbs_sweep`] — stochastic resampling (the MCMC inference of
//!   Algorithm 1),
//! * [`icm_sweep`] — iterated conditional modes for greedy decoding,
//! * [`simulated_annealing`] — tempered Gibbs for higher-quality decoding.

use crate::util::sample_from_log_weights;
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};

/// A model exposing per-site conditional log-potentials.
///
/// A *site* is one target node (e.g. the region label of record `i`); its
/// candidates are a dense `0..num_candidates(site)` relabelling of the
/// admissible labels. `local_log_potential` must return the unnormalised
/// log-probability of assigning `candidate` at `site` **given the current
/// assignment of every other site** (i.e. the sum of the log-potentials of
/// all cliques touching the site).
pub trait ConditionalModel {
    /// Number of sites in the model.
    fn num_sites(&self) -> usize;

    /// Number of candidate labels at `site`.
    fn num_candidates(&self, site: usize) -> usize;

    /// Unnormalised conditional log-potential of `candidate` at `site`
    /// under the current `state` (dense candidate indices per site).
    fn local_log_potential(&self, site: usize, candidate: usize, state: &[usize]) -> f64;

    /// The sites whose conditional could change when `site`'s label moves
    /// from `prev_candidate` to `state[site]` — the *Markov blanket* of
    /// `site`, viewed from the invalidation side.
    ///
    /// The memoized sweeps ([`gibbs_sweep_cached`] / [`icm_sweep_cached`])
    /// call this after every accepted label change (with `state` already
    /// holding the new label) and refill exactly the returned rows of the
    /// [`SweepCache`]. Soundness contract: the result must contain every
    /// site `j ≠ site` whose `local_log_potential(j, ·, ·)` *value*
    /// changes between the pre-flip and post-flip state. Knowing the
    /// previous label lets a model prove value-equality semantically (for
    /// example a feature that only counts distinct labels is unchanged
    /// when both the old and new label still occur elsewhere in its
    /// window) rather than falling back to everything that syntactically
    /// reads `state[site]`. Over-approximating only costs refills;
    /// under-approximating silently corrupts sampling. `site` itself never
    /// needs to be returned: a site's own row substitutes the candidate
    /// and must not read its own state entry.
    ///
    /// The default returns every site, which is always sound and reduces
    /// the cached sweeps to the naive ones.
    fn dependents(
        &self,
        site: usize,
        prev_candidate: usize,
        state: &[usize],
    ) -> impl Iterator<Item = usize> {
        let _ = (site, prev_candidate, state);
        0..self.num_sites()
    }

    /// Writes `site`'s full candidate row —
    /// `local_log_potential(site, c, state)` for `c` in
    /// `0..num_candidates(site)` — into `out`.
    ///
    /// The memoized sweeps refill whole rows through this hook, so a model
    /// can hoist work shared by every candidate of one site (segment
    /// bounds, label-independent feature terms) out of the per-candidate
    /// loop. Overrides must stay **bitwise identical** to the
    /// per-candidate path: evaluate the same floating-point expressions,
    /// only factored — the dual-kernel oracle suites compare the two.
    fn fill_row(&self, site: usize, state: &[usize], out: &mut [f64]) {
        for (c, slot) in out.iter_mut().enumerate() {
            *slot = self.local_log_potential(site, c, state);
        }
    }
}

/// Reusable buffers for the sweep hot path.
///
/// [`gibbs_sweep`] needs one log-weight vector per resampled site; decoding
/// a sequence runs tens of sweeps, and a batch workload decodes thousands
/// of sequences. Holding the buffer in a `SweepScratch` owned by the caller
/// (one per worker thread in the batch engine) turns those per-sweep
/// allocations into a single allocation per worker.
#[derive(Debug, Default)]
pub struct SweepScratch {
    log_weights: Vec<f64>,
}

impl SweepScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        SweepScratch::default()
    }
}

// Process-wide kernel counters (PoolStats-style: accumulate from process
// start, never reset). `SweepCache` counts locally with plain integers and
// publishes via `flush_stats`, so the hot loop never touches an atomic.
static ROWS_FILLED: AtomicU64 = AtomicU64::new(0);
static ROWS_REUSED: AtomicU64 = AtomicU64::new(0);
static INVALIDATIONS: AtomicU64 = AtomicU64::new(0);
static PAIRWISE_TABLE_BYTES: AtomicU64 = AtomicU64::new(0);

/// Counters of the memoized sweep kernel.
///
/// Returned per cache by [`SweepCache::stats`] (local, unflushed) and
/// process-wide by [`kernel_stats`] (everything flushed so far). A *row*
/// is one site's full vector of candidate log-potentials; the reuse rate
/// is the fraction of visited rows served from cache instead of being
/// recomputed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KernelStats {
    /// Rows recomputed because they were dirty (or never filled).
    pub rows_filled: u64,
    /// Rows served from cache without recomputation.
    pub rows_reused: u64,
    /// Rows newly marked dirty by a label change (own-chain blanket
    /// marks plus any external [`SweepCache::invalidate`] calls).
    pub invalidations: u64,
    /// Cumulative bytes of precomputed pairwise feature tables built by
    /// model layers (see `note_pairwise_table_bytes`); only meaningful in
    /// the process-wide snapshot.
    pub pairwise_table_bytes: u64,
}

impl KernelStats {
    /// Fraction of row visits served from cache (`0.0` when nothing ran).
    pub fn reuse_rate(&self) -> f64 {
        let total = self.rows_filled + self.rows_reused;
        if total == 0 {
            0.0
        } else {
            self.rows_reused as f64 / total as f64
        }
    }

    /// Adds another snapshot's counters into this one.
    pub fn merge(&mut self, other: &KernelStats) {
        self.rows_filled += other.rows_filled;
        self.rows_reused += other.rows_reused;
        self.invalidations += other.invalidations;
        self.pairwise_table_bytes += other.pairwise_table_bytes;
    }
}

/// Process-wide snapshot of every counter flushed so far (all caches, all
/// threads) — the kernel-side counterpart of a worker pool's `PoolStats`.
pub fn kernel_stats() -> KernelStats {
    KernelStats {
        rows_filled: ROWS_FILLED.load(Ordering::Relaxed),
        rows_reused: ROWS_REUSED.load(Ordering::Relaxed),
        invalidations: INVALIDATIONS.load(Ordering::Relaxed),
        pairwise_table_bytes: PAIRWISE_TABLE_BYTES.load(Ordering::Relaxed),
    }
}

/// Records `bytes` of freshly built pairwise feature tables into the
/// process-wide [`kernel_stats`] counter. Called by model layers (e.g.
/// `ism-c2mn`'s per-sequence context) when they precompute edge tables;
/// the counter is cumulative across the process lifetime.
pub fn note_pairwise_table_bytes(bytes: u64) {
    PAIRWISE_TABLE_BYTES.fetch_add(bytes, Ordering::Relaxed);
}

/// Memoized per-site rows of candidate log-potentials with dirty bits —
/// the state behind [`gibbs_sweep_cached`] and [`icm_sweep_cached`].
///
/// A row holds the **raw** (untempered) log-potential of every candidate
/// at one site. A row is refilled only when dirty; a label change marks
/// exactly the flipped site's [`ConditionalModel::dependents`] dirty.
/// Temperature is applied at sample time (`row[c] * inv_t` — the very
/// expression the naive sweep evaluates), so the cached sweeps are
/// *bitwise identical* to the naive ones: pure memoization, and raw rows
/// stay valid across temperature changes (annealing) and across the
/// Gibbs → ICM hand-off.
///
/// One cache serves one site model over one state vector; call
/// [`reset`](SweepCache::reset) when either changes (e.g. per sequence).
/// Cross-model couplings (another chain's labels feeding this model's
/// potentials) are invalidated externally via
/// [`invalidate`](SweepCache::invalidate).
#[derive(Debug, Default)]
pub struct SweepCache {
    /// Row offset per site into `rows` (`num_sites + 1` entries).
    offsets: Vec<usize>,
    /// Raw log-potential rows, flat.
    rows: Vec<f64>,
    /// Per-site dirty bit.
    dirty: Vec<bool>,
    /// Tempered sampling buffer (reused across sites).
    tempered: Vec<f64>,
    /// Local counters, published by [`flush_stats`](SweepCache::flush_stats).
    stats: KernelStats,
}

impl SweepCache {
    /// Creates an empty cache; buffers grow on first [`reset`](Self::reset).
    pub fn new() -> Self {
        SweepCache::default()
    }

    /// Re-targets the cache at `model`: sizes the row arena and marks every
    /// site dirty. Counters are preserved (they accumulate across resets).
    pub fn reset<M: ConditionalModel + ?Sized>(&mut self, model: &M) {
        let n = model.num_sites();
        self.offsets.clear();
        self.offsets.reserve(n + 1);
        let mut off = 0usize;
        for site in 0..n {
            self.offsets.push(off);
            off += model.num_candidates(site);
        }
        self.offsets.push(off);
        self.rows.clear();
        self.rows.resize(off, 0.0);
        self.dirty.clear();
        self.dirty.resize(n, true);
    }

    /// Marks one site's row dirty (idempotent). External couplings use
    /// this when something *outside* the model's own state — e.g. the
    /// other chain of a coupled network — changes under a row.
    #[inline]
    pub fn invalidate(&mut self, site: usize) {
        if let Some(d) = self.dirty.get_mut(site) {
            if !*d {
                *d = true;
                self.stats.invalidations += 1;
            }
        }
    }

    /// Whether `site`'s row is currently marked dirty (out of sync with
    /// the model state). Diagnostic accessor for tests and tooling.
    pub fn is_dirty(&self, site: usize) -> bool {
        self.dirty[site]
    }

    /// Refreshes every row against `state`, leaving the whole cache clean.
    ///
    /// Used by the blanket-soundness suites and by benchmarks that want a
    /// fully warm cache before measuring: after `fill_all`, the only dirty
    /// rows are those something explicitly invalidates.
    pub fn fill_all<M: ConditionalModel + ?Sized>(&mut self, model: &M, state: &[usize]) {
        for site in 0..model.num_sites() {
            let k = model.num_candidates(site);
            self.refresh_row(model, site, k, state);
        }
    }

    /// Local (unflushed) counters of this cache.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Publishes the local counters into the process-wide [`kernel_stats`]
    /// totals and zeroes them.
    pub fn flush_stats(&mut self) {
        let s = std::mem::take(&mut self.stats);
        if s.rows_filled > 0 {
            ROWS_FILLED.fetch_add(s.rows_filled, Ordering::Relaxed);
        }
        if s.rows_reused > 0 {
            ROWS_REUSED.fetch_add(s.rows_reused, Ordering::Relaxed);
        }
        if s.invalidations > 0 {
            INVALIDATIONS.fetch_add(s.invalidations, Ordering::Relaxed);
        }
    }

    /// Ensures `site`'s row holds current raw log-potentials, refilling it
    /// from the model when dirty; returns the row's offset.
    #[inline]
    fn refresh_row<M: ConditionalModel + ?Sized>(
        &mut self,
        model: &M,
        site: usize,
        k: usize,
        state: &[usize],
    ) -> usize {
        let off = self.offsets[site];
        if self.dirty[site] {
            model.fill_row(site, state, &mut self.rows[off..off + k]);
            self.dirty[site] = false;
            self.stats.rows_filled += 1;
        } else {
            self.stats.rows_reused += 1;
        }
        off
    }

    /// Marks the flipped site's dependents dirty after a label change.
    #[inline]
    fn mark_dependents<M: ConditionalModel + ?Sized>(
        &mut self,
        model: &M,
        site: usize,
        prev_candidate: usize,
        state: &[usize],
    ) {
        for j in model.dependents(site, prev_candidate, state) {
            self.invalidate(j);
        }
    }
}

/// One Gibbs sweep routed through a [`SweepCache`]: byte-identical to
/// [`gibbs_sweep_with`] (same RNG stream, same states, same change counts)
/// for any sound [`ConditionalModel::dependents`], but a site's candidate
/// row is recomputed only when something in its Markov blanket changed
/// since it was last filled.
///
/// The caller owns invalidation across sweeps: reset the cache per state
/// vector, and [`SweepCache::invalidate`] rows whose *external* inputs
/// (anything the model reads besides `state`) changed between sweeps.
pub fn gibbs_sweep_cached<M: ConditionalModel + ?Sized, R: Rng + ?Sized>(
    model: &M,
    state: &mut [usize],
    temperature: f64,
    rng: &mut R,
    cache: &mut SweepCache,
) -> usize {
    debug_assert_eq!(state.len(), model.num_sites());
    debug_assert_eq!(cache.dirty.len(), model.num_sites(), "cache not reset");
    let inv_t = 1.0 / temperature.max(1e-9);
    let mut changed = 0;
    for site in 0..model.num_sites() {
        let k = model.num_candidates(site);
        if k <= 1 {
            continue;
        }
        let off = cache.refresh_row(model, site, k, state);
        let weights = &mut cache.tempered;
        weights.clear();
        weights.extend(cache.rows[off..off + k].iter().map(|&v| v * inv_t));
        let new = sample_from_log_weights(weights, rng);
        if new != state[site] {
            changed += 1;
            let prev = state[site];
            state[site] = new;
            cache.mark_dependents(model, site, prev, state);
        }
    }
    changed
}

/// One ICM sweep routed through a [`SweepCache`]: byte-identical to
/// [`icm_sweep`] (argmax over the same raw log-potentials, same
/// first-strictly-greater tie-break) with the same memoization as
/// [`gibbs_sweep_cached`] — and since both cache *raw* values, one cache
/// carries over from the annealed Gibbs phase into ICM polishing with no
/// invalidation in between.
pub fn icm_sweep_cached<M: ConditionalModel + ?Sized>(
    model: &M,
    state: &mut [usize],
    cache: &mut SweepCache,
) -> usize {
    debug_assert_eq!(state.len(), model.num_sites());
    debug_assert_eq!(cache.dirty.len(), model.num_sites(), "cache not reset");
    let mut changed = 0;
    for site in 0..model.num_sites() {
        let k = model.num_candidates(site);
        if k <= 1 {
            continue;
        }
        let off = cache.refresh_row(model, site, k, state);
        let mut best = f64::NEG_INFINITY;
        let mut arg = state[site];
        for c in 0..k {
            let v = cache.rows[off + c];
            if v > best {
                best = v;
                arg = c;
            }
        }
        if arg != state[site] {
            changed += 1;
            let prev = state[site];
            state[site] = arg;
            cache.mark_dependents(model, site, prev, state);
        }
    }
    changed
}

/// One Gibbs sweep: resamples every site in order from its conditional at
/// temperature `temperature` (1.0 = the model distribution).
///
/// Allocates a fresh buffer per call; hot paths should prefer
/// [`gibbs_sweep_with`] with a reused [`SweepScratch`].
///
/// Returns the number of sites whose label changed.
pub fn gibbs_sweep<M: ConditionalModel + ?Sized, R: Rng + ?Sized>(
    model: &M,
    state: &mut [usize],
    temperature: f64,
    rng: &mut R,
) -> usize {
    gibbs_sweep_with(model, state, temperature, rng, &mut SweepScratch::new())
}

/// [`gibbs_sweep`] routed through caller-owned scratch buffers.
///
/// Behaviour (including the RNG stream consumed) is identical to
/// [`gibbs_sweep`]; only the allocation strategy differs.
pub fn gibbs_sweep_with<M: ConditionalModel + ?Sized, R: Rng + ?Sized>(
    model: &M,
    state: &mut [usize],
    temperature: f64,
    rng: &mut R,
    scratch: &mut SweepScratch,
) -> usize {
    debug_assert_eq!(state.len(), model.num_sites());
    let inv_t = 1.0 / temperature.max(1e-9);
    let mut changed = 0;
    let weights = &mut scratch.log_weights;
    for site in 0..model.num_sites() {
        let k = model.num_candidates(site);
        if k <= 1 {
            continue;
        }
        weights.clear();
        weights.extend((0..k).map(|c| model.local_log_potential(site, c, state) * inv_t));
        let new = sample_from_log_weights(weights, rng);
        if new != state[site] {
            changed += 1;
        }
        state[site] = new;
    }
    changed
}

/// One ICM sweep: sets every site to its conditional argmax.
///
/// Returns the number of sites whose label changed.
pub fn icm_sweep<M: ConditionalModel + ?Sized>(model: &M, state: &mut [usize]) -> usize {
    debug_assert_eq!(state.len(), model.num_sites());
    let mut changed = 0;
    for site in 0..model.num_sites() {
        let k = model.num_candidates(site);
        if k <= 1 {
            continue;
        }
        let mut best = f64::NEG_INFINITY;
        let mut arg = state[site];
        for c in 0..k {
            let v = model.local_log_potential(site, c, state);
            if v > best {
                best = v;
                arg = c;
            }
        }
        if arg != state[site] {
            changed += 1;
            state[site] = arg;
        }
    }
    changed
}

/// Geometric annealing schedule from `t_start` down to `t_end`.
#[derive(Debug, Clone, Copy)]
pub struct AnnealSchedule {
    /// Initial temperature (> t_end).
    pub t_start: f64,
    /// Final temperature (> 0).
    pub t_end: f64,
    /// Number of Gibbs sweeps across the schedule.
    pub sweeps: usize,
}

impl Default for AnnealSchedule {
    fn default() -> Self {
        AnnealSchedule {
            t_start: 2.0,
            t_end: 0.2,
            sweeps: 20,
        }
    }
}

impl AnnealSchedule {
    /// Temperature of sweep `i` (`0 ≤ i < sweeps`): geometric interpolation
    /// with `temperature(0) = t_start` and
    /// `temperature(sweeps − 1) = t_end`.
    ///
    /// The denominator is `sweeps − 1`, not `sweeps`: dividing by `sweeps`
    /// would leave the final sweep at `t_start·ratio^((sweeps−1)/sweeps)`,
    /// never reaching the configured `t_end` (and a 1-sweep schedule would
    /// run entirely at `t_start`).
    pub fn temperature(&self, i: usize) -> f64 {
        debug_assert!(i < self.sweeps.max(1));
        if self.sweeps <= 1 {
            // A single sweep runs at the coldest configured temperature.
            return self.t_end;
        }
        let ratio = (self.t_end / self.t_start).max(1e-12);
        let frac = i as f64 / (self.sweeps - 1) as f64;
        self.t_start * ratio.powf(frac)
    }
}

/// Simulated annealing: tempered Gibbs sweeps followed by ICM until a local
/// optimum is reached (at most `num_sites` extra ICM sweeps).
pub fn simulated_annealing<M: ConditionalModel + ?Sized, R: Rng + ?Sized>(
    model: &M,
    state: &mut [usize],
    schedule: &AnnealSchedule,
    rng: &mut R,
) {
    let mut scratch = SweepScratch::new();
    for i in 0..schedule.sweeps {
        gibbs_sweep_with(model, state, schedule.temperature(i), rng, &mut scratch);
    }
    for _ in 0..model.num_sites().max(1) {
        if icm_sweep(model, state) == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A 1-D Ising-style chain: K labels, unary preference for label
    /// `prefs[i]`, pairwise coupling rewarding equal neighbours.
    struct Chain {
        prefs: Vec<usize>,
        k: usize,
        unary: f64,
        coupling: f64,
    }

    impl ConditionalModel for Chain {
        fn num_sites(&self) -> usize {
            self.prefs.len()
        }
        fn num_candidates(&self, _site: usize) -> usize {
            self.k
        }
        fn local_log_potential(&self, site: usize, candidate: usize, state: &[usize]) -> f64 {
            let mut v = if candidate == self.prefs[site] {
                self.unary
            } else {
                0.0
            };
            if site > 0 && state[site - 1] == candidate {
                v += self.coupling;
            }
            if site + 1 < state.len() && state[site + 1] == candidate {
                v += self.coupling;
            }
            v
        }
    }

    #[test]
    fn icm_reaches_unary_optimum_without_coupling() {
        let model = Chain {
            prefs: vec![2, 0, 1, 1, 0],
            k: 3,
            unary: 1.0,
            coupling: 0.0,
        };
        let mut state = vec![0; 5];
        icm_sweep(&model, &mut state);
        assert_eq!(state, vec![2, 0, 1, 1, 0]);
        // A second sweep changes nothing.
        assert_eq!(icm_sweep(&model, &mut state), 0);
    }

    #[test]
    fn coupling_smooths_isolated_dissent() {
        // Strong coupling: starting from the all-zero labelling, the middle
        // site's unary preference for label 1 is overruled by both
        // neighbours (coupling 2+2 beats unary 0.5), so ICM keeps it 0.
        let model = Chain {
            prefs: vec![0, 1, 0, 0, 0],
            k: 2,
            unary: 0.5,
            coupling: 2.0,
        };
        let mut state = vec![0, 0, 0, 0, 0];
        let changed = icm_sweep(&model, &mut state);
        assert_eq!(changed, 0);
        assert_eq!(state, vec![0, 0, 0, 0, 0]);

        // With weak coupling the unary preference wins instead.
        let weak = Chain {
            prefs: vec![0, 1, 0, 0, 0],
            k: 2,
            unary: 0.5,
            coupling: 0.1,
        };
        let mut state = vec![0, 0, 0, 0, 0];
        icm_sweep(&weak, &mut state);
        assert_eq!(state, vec![0, 1, 0, 0, 0]);
    }

    #[test]
    fn gibbs_mixes_toward_mode() {
        let model = Chain {
            prefs: vec![1; 12],
            k: 2,
            unary: 2.0,
            coupling: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let mut state = vec![0; 12];
        for _ in 0..50 {
            gibbs_sweep(&model, &mut state, 1.0, &mut rng);
        }
        let ones = state.iter().filter(|&&s| s == 1).count();
        assert!(ones >= 10, "state {state:?}");
    }

    #[test]
    fn low_temperature_gibbs_is_greedy() {
        let model = Chain {
            prefs: vec![1, 1, 1, 1],
            k: 2,
            unary: 1.0,
            coupling: 0.5,
        };
        let mut rng = StdRng::seed_from_u64(6);
        let mut state = vec![0; 4];
        gibbs_sweep(&model, &mut state, 1e-6, &mut rng);
        assert_eq!(state, vec![1, 1, 1, 1]);
    }

    #[test]
    fn annealing_finds_global_mode_despite_bad_init() {
        let model = Chain {
            prefs: vec![1; 20],
            k: 4,
            unary: 1.5,
            coupling: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let mut state: Vec<usize> = (0..20).map(|i| i % 4).collect();
        simulated_annealing(&model, &mut state, &AnnealSchedule::default(), &mut rng);
        assert_eq!(state, vec![1; 20]);
    }

    #[test]
    fn schedule_reaches_configured_endpoints() {
        // Regression: `frac = i / sweeps` left the final sweep at
        // t_start·ratio^((sweeps−1)/sweeps) > t_end.
        for sweeps in [2usize, 3, 7, 20, 100] {
            let s = AnnealSchedule {
                t_start: 2.0,
                t_end: 0.2,
                sweeps,
            };
            assert!(
                (s.temperature(0) - 2.0).abs() < 1e-12,
                "sweeps={sweeps}: first sweep at {}",
                s.temperature(0)
            );
            assert!(
                (s.temperature(sweeps - 1) - 0.2).abs() < 1e-12,
                "sweeps={sweeps}: final sweep at {}",
                s.temperature(sweeps - 1)
            );
        }
    }

    #[test]
    fn schedule_is_monotonically_cooling() {
        let s = AnnealSchedule::default();
        for i in 1..s.sweeps {
            assert!(s.temperature(i) < s.temperature(i - 1));
        }
    }

    #[test]
    fn one_sweep_schedule_runs_cold() {
        // Regression: with sweeps = 1 the whole anneal used to run at
        // t_start; a single sweep should use the coldest temperature.
        let s = AnnealSchedule {
            t_start: 2.0,
            t_end: 0.2,
            sweeps: 1,
        };
        assert_eq!(s.temperature(0), 0.2);
    }

    #[test]
    fn scratch_sweep_matches_allocating_sweep() {
        let model = Chain {
            prefs: vec![1, 0, 2, 1, 1, 0, 2, 2],
            k: 3,
            unary: 1.0,
            coupling: 0.7,
        };
        let mut rng_a = StdRng::seed_from_u64(21);
        let mut rng_b = StdRng::seed_from_u64(21);
        let mut state_a = vec![0; 8];
        let mut state_b = vec![0; 8];
        let mut scratch = SweepScratch::new();
        for _ in 0..20 {
            let ca = gibbs_sweep(&model, &mut state_a, 0.8, &mut rng_a);
            let cb = gibbs_sweep_with(&model, &mut state_b, 0.8, &mut rng_b, &mut scratch);
            assert_eq!(ca, cb);
            assert_eq!(state_a, state_b);
        }
    }

    /// The [`Chain`] model with a tight (exact) Markov blanket: a site's
    /// conditional reads only its ±1 neighbours.
    struct BlanketChain(Chain);

    impl ConditionalModel for BlanketChain {
        fn num_sites(&self) -> usize {
            self.0.num_sites()
        }
        fn num_candidates(&self, site: usize) -> usize {
            self.0.num_candidates(site)
        }
        fn local_log_potential(&self, site: usize, candidate: usize, state: &[usize]) -> f64 {
            self.0.local_log_potential(site, candidate, state)
        }
        fn dependents(
            &self,
            site: usize,
            _prev_candidate: usize,
            _state: &[usize],
        ) -> impl Iterator<Item = usize> {
            let n = self.num_sites();
            (site.saturating_sub(1)..=(site + 1).min(n - 1)).filter(move |&j| j != site)
        }
    }

    fn test_chain() -> Chain {
        Chain {
            prefs: vec![1, 0, 2, 1, 1, 0, 2, 2, 0, 1],
            k: 3,
            unary: 1.0,
            coupling: 0.7,
        }
    }

    #[test]
    fn cached_gibbs_is_byte_identical_to_naive() {
        // Dual-kernel oracle at the pgm layer: the cached sweep must draw
        // the same RNG stream and land in the same states as the naive
        // sweep, with both the default (all-sites) blanket and the tight
        // ±1 blanket, across the annealing temperature range.
        let naive = test_chain();
        let tight = BlanketChain(test_chain());
        for seed in 0..20u64 {
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let mut rng_c = StdRng::seed_from_u64(seed);
            let mut s_naive = vec![0usize; 10];
            let mut s_default = vec![0usize; 10];
            let mut s_tight = vec![0usize; 10];
            let mut scratch = SweepScratch::new();
            let mut cache_default = SweepCache::new();
            cache_default.reset(&naive);
            let mut cache_tight = SweepCache::new();
            cache_tight.reset(&tight);
            for sweep in 0..30 {
                let t = 2.0 * 0.85f64.powi(sweep);
                let ca = gibbs_sweep_with(&naive, &mut s_naive, t, &mut rng_a, &mut scratch);
                let cb =
                    gibbs_sweep_cached(&naive, &mut s_default, t, &mut rng_b, &mut cache_default);
                let cc = gibbs_sweep_cached(&tight, &mut s_tight, t, &mut rng_c, &mut cache_tight);
                assert_eq!(ca, cb, "seed {seed} sweep {sweep}");
                assert_eq!(ca, cc, "seed {seed} sweep {sweep}");
                assert_eq!(s_naive, s_default, "seed {seed} sweep {sweep}");
                assert_eq!(s_naive, s_tight, "seed {seed} sweep {sweep}");
            }
            // ICM polish through the same caches stays identical too.
            loop {
                let ca = icm_sweep(&naive, &mut s_naive);
                let cb = icm_sweep_cached(&naive, &mut s_default, &mut cache_default);
                let cc = icm_sweep_cached(&tight, &mut s_tight, &mut cache_tight);
                assert_eq!(ca, cb);
                assert_eq!(ca, cc);
                assert_eq!(s_naive, s_default);
                assert_eq!(s_naive, s_tight);
                if ca == 0 {
                    break;
                }
            }
            // The tight blanket must actually reuse rows (the default
            // blanket invalidates everything whenever anything flips).
            let stats = cache_tight.stats();
            assert!(stats.rows_filled > 0);
            assert!(
                stats.rows_reused > 0,
                "tight blanket never reused a row: {stats:?}"
            );
        }
    }

    #[test]
    fn blanket_soundness_of_tight_chain() {
        // Flipping any site outside dependents(s) must not change site s's
        // conditional row — the contract the cached sweeps rely on.
        let model = BlanketChain(test_chain());
        let n = model.num_sites();
        let mut rng = StdRng::seed_from_u64(3);
        let mut state: Vec<usize> = (0..n).map(|_| rng.random_range(0..3)).collect();
        for _ in 0..200 {
            let i = rng.random_range(0..n);
            let new = rng.random_range(0..3);
            let prev = state[i];
            let deps: Vec<usize> = model.dependents(i, prev, &state).collect();
            let before: Vec<Vec<f64>> = (0..n)
                .map(|s| {
                    (0..3)
                        .map(|c| model.local_log_potential(s, c, &state))
                        .collect()
                })
                .collect();
            state[i] = new;
            for (s, row) in before.iter().enumerate() {
                if s == i || deps.contains(&s) {
                    continue;
                }
                for (c, old) in row.iter().enumerate() {
                    let after = model.local_log_potential(s, c, &state);
                    assert_eq!(
                        old.to_bits(),
                        after.to_bits(),
                        "site {s} changed after flipping {i} outside its blanket"
                    );
                }
            }
        }
    }

    #[test]
    fn cache_reset_preserves_counters_and_redirties() {
        let model = BlanketChain(test_chain());
        let mut cache = SweepCache::new();
        cache.reset(&model);
        let mut rng = StdRng::seed_from_u64(9);
        let mut state = vec![0usize; model.num_sites()];
        gibbs_sweep_cached(&model, &mut state, 1.0, &mut rng, &mut cache);
        gibbs_sweep_cached(&model, &mut state, 1.0, &mut rng, &mut cache);
        let before = cache.stats();
        assert!(before.rows_filled >= model.num_sites() as u64);
        cache.reset(&model);
        // Counters survive the reset; every row is dirty again.
        assert_eq!(cache.stats(), before);
        gibbs_sweep_cached(&model, &mut state, 1.0, &mut rng, &mut cache);
        assert!(cache.stats().rows_filled >= before.rows_filled + model.num_sites() as u64);
        // Flushing publishes and zeroes the local counters.
        let global_before = kernel_stats();
        cache.flush_stats();
        assert_eq!(cache.stats(), KernelStats::default());
        let global_after = kernel_stats();
        assert!(global_after.rows_filled >= global_before.rows_filled);
    }

    #[test]
    fn single_candidate_sites_are_skipped() {
        struct Fixed;
        impl ConditionalModel for Fixed {
            fn num_sites(&self) -> usize {
                3
            }
            fn num_candidates(&self, _s: usize) -> usize {
                1
            }
            fn local_log_potential(&self, _s: usize, _c: usize, _st: &[usize]) -> f64 {
                0.0
            }
        }
        let mut state = vec![0; 3];
        let mut rng = StdRng::seed_from_u64(8);
        assert_eq!(gibbs_sweep(&Fixed, &mut state, 1.0, &mut rng), 0);
        assert_eq!(icm_sweep(&Fixed, &mut state), 0);
    }
}
